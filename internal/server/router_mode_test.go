package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"just/internal/core"
	"just/internal/kv"
	"just/internal/rpc"
)

// startTCPRegionServers boots n region servers on real TCP sockets
// (127.0.0.1, ephemeral ports) and returns their addresses — the same
// topology `just-server -role=region` runs, in-process for the test.
func startTCPRegionServers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		node, err := kv.OpenRegionNode(t.TempDir(), kv.NodeOptions{
			NodeID:    i + 1,
			Transport: rpc.NewClient(rpc.ClientOptions{}),
		})
		if err != nil {
			t.Fatalf("open region node %d: %v", i+1, err)
		}
		srv, err := rpc.Serve("127.0.0.1:0", node.Handler(), rpc.ServerOptions{})
		if err != nil {
			t.Fatalf("rpc listen: %v", err)
		}
		t.Cleanup(func() { srv.Close(); node.Close() })
		addrs[i] = srv.Addr()
	}
	return addrs
}

// newRouterModeServer opens the engine in router mode over the given
// region servers and serves HTTP in front of it.
func newRouterModeServer(t *testing.T, peers []string, opts Options) *httptest.Server {
	t.Helper()
	eng, err := core.Open(core.Config{
		Dir:     t.TempDir(),
		Workers: 2,
		Router:  &kv.RouterOptions{Peers: peers},
	})
	if err != nil {
		t.Fatalf("open router-mode engine: %v", err)
	}
	t.Cleanup(func() { eng.Close() })
	s := New(eng, opts)
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestServerRouterModeOverTCP is the end-to-end acceptance path: three
// region servers on real TCP sockets, a router-mode engine in front,
// SQL ingest and scan flowing through the wire protocol.
func TestServerRouterModeOverTCP(t *testing.T) {
	peers := startTCPRegionServers(t, 3)
	ts := newRouterModeServer(t, peers, Options{})

	res := post(t, ts.URL, "u1", `CREATE TABLE p (fid integer:primary key, name string, geom point)`)
	if res.Error != "" {
		t.Fatalf("create = %+v", res)
	}
	const rows = 50
	for i := 0; i < rows; i++ {
		res = post(t, ts.URL, "u1", fmt.Sprintf(
			`INSERT INTO p VALUES (%d, 'poi-%d', st_makePoint(%f, %f))`,
			i, i, 116.0+float64(i)*0.01, 39.0+float64(i)*0.01))
		if res.Error != "" {
			t.Fatalf("insert %d = %+v", i, res)
		}
	}
	res = post(t, ts.URL, "u1", `SELECT fid, name FROM p`)
	if res.Error != "" || res.Total != rows {
		t.Fatalf("select = %+v, want %d rows", res, rows)
	}
	res = post(t, ts.URL, "u1",
		`SELECT fid FROM p WHERE geom WITHIN st_makeMBR(116, 39, 116.2, 39.2)`)
	if res.Error != "" || res.Total == 0 {
		t.Fatalf("spatial select = %+v", res)
	}

	// The topology admin endpoint reports the routed region map.
	resp, err := http.Get(ts.URL + "/api/v1/admin/topology")
	if err != nil {
		t.Fatal(err)
	}
	var topo struct {
		Mode    string              `json:"mode"`
		Regions []kv.RegionTopology `json:"regions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if topo.Mode != "router" || len(topo.Regions) == 0 {
		t.Fatalf("topology = %+v", topo)
	}
	if topo.Regions[0].Primary == "" {
		t.Fatalf("region without primary: %+v", topo.Regions[0])
	}

	// Metrics flow back from the region servers over rpc, including the
	// networked counters.
	resp, err = http.Get(ts.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var met map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{"rpc_bytes_in", "rpc_bytes_out", "rpc_retries",
		"region_splits", "region_merges", "region_moves", "stale_map_refreshes"} {
		if _, ok := met[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	if met["rpc_bytes_out"].(float64) == 0 {
		t.Error("rpc_bytes_out = 0 after TCP workload")
	}
	if met["bytes_written"].(float64) == 0 {
		t.Error("bytes_written = 0: region-server storage counters not aggregated")
	}
}

// TestRouterModeClusterOnlyEndpointsDegrade pins the contract that the
// simulated-cluster admin surfaces answer a typed 501 in router mode
// instead of panicking on the nil cluster.
func TestRouterModeClusterOnlyEndpointsDegrade(t *testing.T) {
	peers := startTCPRegionServers(t, 1)
	ts := newRouterModeServer(t, peers, Options{})

	for _, ep := range []string{
		"/api/v1/admin/replication",
		"/api/v1/admin/scrub",
		"/api/v1/admin/servers",
	} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: %v", ep, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented || body["code"] != "router_mode" {
			t.Errorf("%s = %d %v, want 501 router_mode", ep, resp.StatusCode, body)
		}
	}
	// Health and the generic surfaces still work.
	resp, err := http.Get(ts.URL + "/api/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health in router mode = %d", resp.StatusCode)
	}
}

// TestFetchDeleteClosesCursor pins the server half of ResultSet.Close:
// DELETE on the fetch endpoint frees the cursor immediately.
func TestFetchDeleteClosesCursor(t *testing.T) {
	ts, s := newTestServer(t, Options{PageSize: 5})
	post(t, ts.URL, "u1", `CREATE TABLE p (fid integer:primary key, name string)`)
	for i := 0; i < 20; i++ {
		post(t, ts.URL, "u1", fmt.Sprintf(`INSERT INTO p VALUES (%d, 'x')`, i))
	}
	res := post(t, ts.URL, "u1", `SELECT fid FROM p`)
	if res.Cursor == "" {
		t.Fatalf("expected a cursor for %d rows at page size 5", res.Total)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/fetch?cursor="+res.Cursor, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out["closed"] != true {
		t.Fatalf("delete = %v", out)
	}
	s.mu.Lock()
	open := len(s.cursors)
	s.mu.Unlock()
	if open != 0 {
		t.Fatalf("%d cursors still open after DELETE", open)
	}
	// A fetch on the closed cursor now misses.
	resp, err = http.Get(ts.URL + "/api/v1/fetch?cursor=" + res.Cursor)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fetch after close = %d, want 404", resp.StatusCode)
	}
	// Deleting it again reports closed=false, not an error.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/fetch?cursor="+res.Cursor, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if out["closed"] != false {
		t.Fatalf("double delete = %v", out)
	}
	if !strings.Contains(fmt.Sprint(out), "false") {
		t.Fatalf("double delete body = %v", out)
	}
}
