// Package server implements JUST's service layer (Section VII): an HTTP
// PaaS front end over one shared engine. All users share the engine's
// execution context (the paper's shared Spark context); each user gets a
// private table/view namespace; large results are returned in multiple
// transmissions through cursors, which the SDKs page through
// transparently (Fig. 2).
package server

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"just/internal/core"
	"just/internal/exec"
	"just/internal/geom"
	"just/internal/sql"
)

// Options tune the server.
type Options struct {
	// PageSize bounds rows per transmission; default 1000 (the paper's
	// configurable split threshold).
	PageSize int
	// CursorTTL expires abandoned cursors; default 5 minutes.
	CursorTTL time.Duration
}

func (o Options) withDefaults() Options {
	if o.PageSize <= 0 {
		o.PageSize = 1000
	}
	if o.CursorTTL <= 0 {
		o.CursorTTL = 5 * time.Minute
	}
	return o
}

// Server is the HTTP front end.
type Server struct {
	engine *core.Engine
	opts   Options

	mu      sync.Mutex
	cursors map[string]*cursor
	nextID  int64
	now     func() time.Time
}

type cursor struct {
	rows    [][]any
	columns []string
	expires time.Time
}

// New creates a server over an engine.
func New(engine *core.Engine, opts Options) *Server {
	return &Server{
		engine:  engine,
		opts:    opts.withDefaults(),
		cursors: map[string]*cursor{},
		now:     time.Now,
	}
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/sql", s.handleSQL)
	mux.HandleFunc("/api/v1/fetch", s.handleFetch)
	mux.HandleFunc("/api/v1/health", s.handleHealth)
	mux.HandleFunc("/api/v1/metrics", s.handleMetrics)
	return mux
}

// sqlRequest is the body of POST /api/v1/sql.
type sqlRequest struct {
	User string `json:"user"`
	SQL  string `json:"sql"`
}

// sqlResponse carries the first page of a result.
type sqlResponse struct {
	Message string   `json:"message,omitempty"`
	Columns []string `json:"columns,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`
	Cursor  string   `json:"cursor,omitempty"`
	Total   int      `json:"total"`
	Error   string   `json:"error,omitempty"`
}

func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req sqlRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, sqlResponse{Error: "bad request: " + err.Error()})
		return
	}
	if req.User == "" {
		req.User = r.Header.Get("X-JUST-User")
	}
	sess := sql.NewSession(s.engine, req.User)
	res, err := sess.Execute(req.SQL)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, sqlResponse{Error: err.Error()})
		return
	}
	resp := sqlResponse{Message: res.Message}
	if res.Frame != nil {
		resp.Columns = res.Frame.Schema().Names()
		all := res.Frame.Collect()
		resp.Total = len(all)
		encoded := make([][]any, len(all))
		for i, row := range all {
			encoded[i] = encodeRow(row)
		}
		res.Frame.Release()
		if len(encoded) > s.opts.PageSize {
			resp.Rows = encoded[:s.opts.PageSize]
			resp.Cursor = s.storeCursor(resp.Columns, encoded[s.opts.PageSize:])
		} else {
			resp.Rows = encoded
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) storeCursor(columns []string, rest [][]any) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gcLocked()
	s.nextID++
	id := fmt.Sprintf("cur-%d", s.nextID)
	s.cursors[id] = &cursor{
		rows:    rest,
		columns: columns,
		expires: s.now().Add(s.opts.CursorTTL),
	}
	return id
}

func (s *Server) gcLocked() {
	now := s.now()
	for id, c := range s.cursors {
		if c.expires.Before(now) {
			delete(s.cursors, id)
		}
	}
}

func (s *Server) handleFetch(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("cursor")
	s.mu.Lock()
	s.gcLocked()
	c, ok := s.cursors[id]
	if ok {
		delete(s.cursors, id)
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, sqlResponse{Error: "unknown or expired cursor"})
		return
	}
	resp := sqlResponse{Columns: c.columns, Total: len(c.rows)}
	if len(c.rows) > s.opts.PageSize {
		resp.Rows = c.rows[:s.opts.PageSize]
		resp.Cursor = s.storeCursor(c.columns, c.rows[s.opts.PageSize:])
	} else {
		resp.Rows = c.rows
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"regions": s.engine.Cluster().Regions(),
	})
}

// handleMetrics exposes the storage counters: the scan pipeline's
// pairs-scanned / rows-kept stage counters and the write path's
// group-commit, WAL-sync, flush-queue and write-stall counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.engine.Cluster().Metrics()
	writeJSON(w, http.StatusOK, map[string]any{
		"regions":              s.engine.Cluster().Regions(),
		"bytes_written":        m.BytesWritten,
		"bytes_read":           m.BytesRead,
		"blocks_read":          m.BlocksRead,
		"block_cache_hits":     m.BlockCacheHits,
		"block_cache_misses":   m.BlockCacheMisses,
		"bloom_negatives":      m.BloomNegatives,
		"flushes":              m.Flushes,
		"compactions":          m.Compactions,
		"scan_tasks":           m.ScanTasks,
		"scan_pairs":           m.ScanPairs,
		"scan_kept":            m.ScanKept,
		"scan_batches":         m.ScanBatches,
		"group_commits":        m.GroupCommits,
		"group_commit_records": m.GroupCommitRecords,
		"wal_syncs":            m.WALSyncs,
		"wal_sync_bytes":       m.WALSyncBytes,
		"flush_queue_depth":    m.FlushQueueDepth,
		"write_stalls":         m.WriteStalls,
		"write_stall_nanos":    m.WriteStallNanos,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// encodeRow converts engine values into JSON-friendly forms: geometry to
// WKT, st_series to [[lng,lat,t]...], bytes to base64.
func encodeRow(row exec.Row) []any {
	out := make([]any, len(row))
	for i, v := range row {
		out[i] = encodeValue(v)
	}
	return out
}

func encodeValue(v any) any {
	switch x := v.(type) {
	case geom.Geometry:
		return map[string]any{"wkt": x.WKT()}
	case []geom.TPoint:
		pts := make([][3]float64, len(x))
		for i, p := range x {
			pts[i] = [3]float64{p.Lng, p.Lat, float64(p.T)}
		}
		return map[string]any{"st_series": pts}
	case []byte:
		return map[string]any{"bytes": base64.StdEncoding.EncodeToString(x)}
	default:
		return v
	}
}
