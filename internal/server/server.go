// Package server implements JUST's service layer (Section VII): an HTTP
// PaaS front end over one shared engine. All users share the engine's
// execution context (the paper's shared Spark context); each user gets a
// private table/view namespace; large results are returned in multiple
// transmissions through cursors, which the SDKs page through
// transparently (Fig. 2).
package server

import (
	"container/list"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"mime"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"just/internal/compress"
	"just/internal/core"
	"just/internal/exec"
	"just/internal/geom"
	"just/internal/jobs"
	"just/internal/kv"
	"just/internal/sql"
)

// Options tune the server.
type Options struct {
	// PageSize bounds rows per transmission; default 1000 (the paper's
	// configurable split threshold).
	PageSize int
	// CursorTTL expires abandoned cursors; default 5 minutes.
	CursorTTL time.Duration
	// MaxCursors bounds how many open cursors the server retains;
	// default 256. When exceeded, the least recently used cursor is
	// evicted (a later fetch on it reports "unknown or expired").
	MaxCursors int
	// MaxCursorBytes bounds the estimated memory held by open cursors;
	// default 64 MiB. LRU eviction applies, but the most recently
	// stored cursor is always kept even if it alone exceeds the bound.
	MaxCursorBytes int64
	// QueryTimeout is the default per-query deadline; 0 means none. A
	// request may tighten it (never widen it) with an X-JUST-Timeout
	// header holding a Go duration.
	QueryTimeout time.Duration
	// MaxConcurrentQueries bounds queries executing at once; 0 means
	// unlimited. Excess queries wait in a bounded queue and are shed
	// with 429/503 once it overflows or their deadline passes.
	MaxConcurrentQueries int
	// MaxQueuedQueries bounds the admission wait queue; default 2x
	// MaxConcurrentQueries. Only meaningful with MaxConcurrentQueries.
	MaxQueuedQueries int
	// QueryMemBudget caps the bytes one query may hold in dataframes
	// and scan buffers; 0 means unlimited. Exceeding it fails the
	// query with a typed memory_budget error instead of an engine OOM.
	QueryMemBudget int64
	// MaxBodyBytes bounds the request body of POST /api/v1/sql;
	// default 1 MiB. Oversized bodies get HTTP 413.
	MaxBodyBytes int64
	// SlowQueryThreshold logs queries slower than this; default 1s.
	SlowQueryThreshold time.Duration
}

func (o Options) withDefaults() Options {
	if o.PageSize <= 0 {
		o.PageSize = 1000
	}
	if o.CursorTTL <= 0 {
		o.CursorTTL = 5 * time.Minute
	}
	if o.MaxCursors <= 0 {
		o.MaxCursors = 256
	}
	if o.MaxCursorBytes <= 0 {
		o.MaxCursorBytes = 64 << 20
	}
	if o.MaxQueuedQueries <= 0 {
		o.MaxQueuedQueries = 2 * o.MaxConcurrentQueries
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.SlowQueryThreshold <= 0 {
		o.SlowQueryThreshold = time.Second
	}
	return o
}

// Server is the HTTP front end.
type Server struct {
	engine   *core.Engine
	opts     Options
	adm      *admissionController
	registry *queryRegistry

	// Query lifecycle counters.
	canceled         atomic.Int64 // queries ended by cancellation (disconnect or kill)
	deadlineExceeded atomic.Int64 // queries ended by their deadline
	memBudgetKills   atomic.Int64 // queries ended by the per-query memory budget
	slowQueries      atomic.Int64 // queries past SlowQueryThreshold
	peakQueryBytes   atomic.Int64 // high-water mark of any single query's memory

	janitorJob string // cursor janitor, registered on the engine's scheduler
	closeOnce  sync.Once

	mu          sync.Mutex
	cursors     map[string]*cursor
	lru         *list.List // front = most recently used; values are *cursor
	cursorBytes int64      // estimated memory held by open cursors
	evicted     int64      // cursors dropped by the LRU bound
	expired     int64      // cursors dropped by the TTL
	nextID      int64
	now         func() time.Time
}

type cursor struct {
	id      string
	rows    [][]any
	columns []string
	bytes   int64 // estimated memory footprint
	expires time.Time
	elem    *list.Element
}

// serverSeq disambiguates janitor job names when several servers share
// one engine (tests do).
var serverSeq atomic.Int64

// New creates a server over an engine.
func New(engine *core.Engine, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		engine:   engine,
		opts:     opts,
		adm:      newAdmissionController(opts.MaxConcurrentQueries, opts.MaxQueuedQueries),
		registry: newQueryRegistry(),
		cursors:  map[string]*cursor{},
		lru:      list.New(),
		now:      time.Now,
	}
	// The cursor janitor expires abandoned cursors on a timer, so TTL'd
	// pages release their memory even when no request arrives to trigger
	// the lazy sweep. It runs as a scheduled janitor-class job: lowest
	// priority, shed first under disk pressure (requests still sweep
	// lazily), visible and pausable through /api/v1/admin/jobs.
	interval := opts.CursorTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	s.janitorJob = fmt.Sprintf("cursor-janitor-%d", serverSeq.Add(1))
	engine.Jobs().Register(jobs.Spec{
		Name:     s.janitorJob,
		Class:    jobs.ClassJanitor,
		Interval: interval,
		Fn: func(context.Context) error {
			s.mu.Lock()
			s.gcLocked()
			s.mu.Unlock()
			return nil
		},
	})
	return s
}

// Close stops the background cursor janitor. It does not close the
// engine. Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() { s.engine.Jobs().Deregister(s.janitorJob) })
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/sql", s.handleSQL)
	mux.HandleFunc("/api/v1/fetch", s.handleFetch)
	mux.HandleFunc("/api/v1/health", s.handleHealth)
	mux.HandleFunc("/api/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/api/v1/admin/queries", s.handleQueries)
	mux.HandleFunc("/api/v1/admin/queries/kill", s.handleQueryKill)
	mux.HandleFunc("/api/v1/admin/replication", s.handleReplication)
	mux.HandleFunc("/api/v1/admin/topology", s.handleTopology)
	mux.HandleFunc("/api/v1/admin/servers", s.handleServers)
	mux.HandleFunc("/api/v1/admin/scrub", s.handleScrub)
	mux.HandleFunc("/api/v1/admin/scrub/run", s.handleScrubRun)
	mux.HandleFunc("/api/v1/admin/stats/refresh", s.handleStatsRefresh)
	mux.HandleFunc("/api/v1/admin/jobs", s.handleJobs)
	mux.HandleFunc("/api/v1/admin/jobs/run", s.handleJobsRun)
	mux.HandleFunc("/api/v1/admin/jobs/pause", s.handleJobsPause)
	mux.HandleFunc("/api/v1/admin/jobs/resume", s.handleJobsResume)
	return mux
}

// handleJobs reports the maintenance scheduler: per-job state and run
// history, per-class quarantine/pause state and counters, and the
// disk-pressure watchdog — GET /api/v1/admin/jobs.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, s.engine.Jobs().Snapshot())
}

// jobActionRequest is the body of the POST /api/v1/admin/jobs/*
// actions: run wants a job name; pause/resume want a class.
type jobActionRequest struct {
	Name  string `json:"name"`
	Class string `json:"class"`
}

// handleJobsRun triggers one registered job and waits for the result:
// POST /api/v1/admin/jobs/run {"name": "scrub:..."}. Concurrent runs of
// the same job collapse onto the in-flight one.
func (s *Server) handleJobsRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req jobActionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Name == "" {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad request: need {\"name\": ...}"})
		return
	}
	resp := map[string]any{"job": req.Name, "ok": true}
	if err := s.engine.Jobs().RunNow(r.Context(), req.Name); err != nil {
		resp["ok"] = false
		resp["error"] = err.Error()
		if errors.Is(err, jobs.ErrUnknownJob) {
			writeJSON(w, http.StatusNotFound, resp)
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleJobsPause pauses a maintenance class (new runs are refused with
// a typed error until resumed): POST {"class": "compact"}.
func (s *Server) handleJobsPause(w http.ResponseWriter, r *http.Request) {
	s.handleJobsClassAction(w, r, func(c jobs.Class) { s.engine.Jobs().Pause(c) })
}

// handleJobsResume resumes a paused class and lifts any quarantine on
// it (the operator override): POST {"class": "compact"}.
func (s *Server) handleJobsResume(w http.ResponseWriter, r *http.Request) {
	s.handleJobsClassAction(w, r, func(c jobs.Class) { s.engine.Jobs().Resume(c) })
}

func (s *Server) handleJobsClassAction(w http.ResponseWriter, r *http.Request, apply func(jobs.Class)) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req jobActionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Class == "" {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad request: need {\"class\": ...}"})
		return
	}
	apply(jobs.Class(req.Class))
	writeJSON(w, http.StatusOK, s.engine.Jobs().Snapshot())
}

// sqlRequest is the body of POST /api/v1/sql.
type sqlRequest struct {
	User string `json:"user"`
	SQL  string `json:"sql"`
}

// sqlResponse carries the first page of a result. Code classifies
// lifecycle failures ("deadline_exceeded", "canceled", "killed",
// "memory_budget", "body_too_large", "queue_full", "queue_timeout") so
// clients can branch without parsing the message.
type sqlResponse struct {
	Message string   `json:"message,omitempty"`
	Columns []string `json:"columns,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`
	Cursor  string   `json:"cursor,omitempty"`
	Total   int      `json:"total"`
	Error   string   `json:"error,omitempty"`
	Code    string   `json:"code,omitempty"`
}

func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || (mt != "application/json" && mt != "text/json") {
			writeJSON(w, http.StatusUnsupportedMediaType,
				sqlResponse{Error: fmt.Sprintf("unsupported content type %q, want application/json", ct), Code: "bad_content_type"})
			return
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var req sqlRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				sqlResponse{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit), Code: "body_too_large"})
			return
		}
		writeJSON(w, http.StatusBadRequest, sqlResponse{Error: "bad request: " + err.Error()})
		return
	}
	if req.User == "" {
		req.User = r.Header.Get("X-JUST-User")
	}

	// The query's lifecycle context: client disconnect cancels it, and
	// the effective deadline (server default, tightened per-request by
	// X-JUST-Timeout) bounds it.
	ctx := r.Context()
	timeout := s.opts.QueryTimeout
	if h := r.Header.Get("X-JUST-Timeout"); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil || d <= 0 {
			writeJSON(w, http.StatusBadRequest, sqlResponse{Error: fmt.Sprintf("bad X-JUST-Timeout %q", h)})
			return
		}
		if timeout == 0 || d < timeout {
			timeout = d
		}
	}
	if timeout > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, timeout)
		defer cancelT()
	}

	release, err := s.adm.admit(ctx)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		switch {
		case errors.Is(err, errQueueFull):
			writeJSON(w, http.StatusTooManyRequests, sqlResponse{Error: err.Error(), Code: "queue_full"})
		default:
			writeJSON(w, http.StatusServiceUnavailable, sqlResponse{Error: err.Error(), Code: "queue_timeout"})
		}
		return
	}
	defer release()

	q := exec.NewQuery(s.opts.QueryMemBudget)
	qctx, cancelQ := context.WithCancel(exec.WithQuery(ctx, q))
	defer cancelQ()
	start := s.now()
	entry := s.registry.register(req.User, req.SQL, start, cancelQ, q)
	defer s.registry.unregister(entry.id)

	sess := sql.NewSession(s.engine, req.User)
	res, err := sess.ExecuteContext(qctx, req.SQL)

	if peak := q.MemPeak(); peak > 0 {
		for {
			old := s.peakQueryBytes.Load()
			if peak <= old || s.peakQueryBytes.CompareAndSwap(old, peak) {
				break
			}
		}
	}
	if elapsed := time.Since(start); elapsed > s.opts.SlowQueryThreshold {
		s.slowQueries.Add(1)
		log.Printf("just/server: slow query user=%q elapsed=%s rows=%d sql=%q",
			req.User, elapsed, q.Rows(), truncateSQL(req.SQL))
	}

	if err != nil {
		code := ""
		switch {
		case errors.Is(err, exec.ErrDeadlineExceeded):
			s.deadlineExceeded.Add(1)
			code = "deadline_exceeded"
		case errors.Is(err, exec.ErrQueryCanceled):
			s.canceled.Add(1)
			code = "canceled"
			if entry.killed.Load() {
				code = "killed"
			}
		case errors.Is(err, exec.ErrMemoryBudget):
			s.memBudgetKills.Add(1)
			code = "memory_budget"
		}
		writeJSON(w, http.StatusUnprocessableEntity, sqlResponse{Error: err.Error(), Code: code})
		return
	}
	resp := sqlResponse{Message: res.Message}
	if res.Frame != nil {
		resp.Columns = res.Frame.Schema().Names()
		all := res.Frame.Collect()
		resp.Total = len(all)
		encoded := make([][]any, len(all))
		for i, row := range all {
			encoded[i] = encodeRow(row)
		}
		res.Frame.Release()
		if len(encoded) > s.opts.PageSize {
			resp.Rows = encoded[:s.opts.PageSize]
			resp.Cursor = s.storeCursor(resp.Columns, encoded[s.opts.PageSize:])
		} else {
			resp.Rows = encoded
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) storeCursor(columns []string, rest [][]any) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gcLocked()
	s.nextID++
	c := &cursor{
		id:      fmt.Sprintf("cur-%d", s.nextID),
		rows:    rest,
		columns: columns,
		bytes:   estimateRows(rest),
		expires: s.now().Add(s.opts.CursorTTL),
	}
	s.cursors[c.id] = c
	c.elem = s.lru.PushFront(c)
	s.cursorBytes += c.bytes
	// Evict least-recently-used cursors past the count/byte bounds. The
	// newest cursor survives even when oversized on its own: its id was
	// (or is about to be) handed to a client.
	for s.lru.Len() > 1 && (s.lru.Len() > s.opts.MaxCursors || s.cursorBytes > s.opts.MaxCursorBytes) {
		s.removeLocked(s.lru.Back().Value.(*cursor))
		s.evicted++
	}
	return c.id
}

// removeLocked detaches a cursor from the map, the LRU list and the
// byte accounting.
func (s *Server) removeLocked(c *cursor) {
	delete(s.cursors, c.id)
	s.lru.Remove(c.elem)
	s.cursorBytes -= c.bytes
}

func (s *Server) gcLocked() {
	now := s.now()
	for _, c := range s.cursors {
		if c.expires.Before(now) {
			s.removeLocked(c)
			s.expired++
		}
	}
}

// estimateRows approximates the memory a cursor's buffered rows hold —
// value payloads plus slice/interface overhead — for the cursor-cache
// byte bound. It is an estimate, not an exact accounting.
func estimateRows(rows [][]any) int64 {
	var n int64
	for _, row := range rows {
		n += 24 // row slice header
		for _, v := range row {
			n += 16 // interface header
			switch x := v.(type) {
			case string:
				n += int64(len(x))
			case map[string]any:
				for k, mv := range x {
					n += int64(len(k)) + 16
					switch y := mv.(type) {
					case string:
						n += int64(len(y))
					case [][3]float64:
						n += int64(len(y)) * 24
					default:
						n += 8
					}
				}
			default:
				n += 8
			}
		}
	}
	return n
}

func (s *Server) handleFetch(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("cursor")
	if r.Method == http.MethodDelete {
		// Explicit cursor close (ResultSet.Close in the SDKs): release
		// the buffered pages now instead of waiting out the TTL.
		s.mu.Lock()
		c, ok := s.cursors[id]
		if ok {
			s.removeLocked(c)
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"closed": ok})
		return
	}
	s.mu.Lock()
	s.gcLocked()
	c, ok := s.cursors[id]
	if ok {
		s.removeLocked(c)
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, sqlResponse{Error: "unknown or expired cursor"})
		return
	}
	resp := sqlResponse{Columns: c.columns, Total: len(c.rows)}
	if len(c.rows) > s.opts.PageSize {
		resp.Rows = c.rows[:s.opts.PageSize]
		resp.Cursor = s.storeCursor(c.columns, c.rows[s.opts.PageSize:])
	} else {
		resp.Rows = c.rows
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"regions": s.engine.Store().Regions(),
	})
}

// cluster returns the in-process simulated cluster, or writes a typed
// 501 and returns nil when the engine routes to networked region
// servers — chaos injection, scrub and replication introspection live
// on the region servers themselves in that deployment.
func (s *Server) cluster(w http.ResponseWriter) *kv.Cluster {
	c := s.engine.Cluster()
	if c == nil {
		writeJSON(w, http.StatusNotImplemented, map[string]any{
			"error": "not available in router mode; see /api/v1/admin/topology",
			"code":  "router_mode",
		})
	}
	return c
}

// handleTopology reports the storage topology: in router mode the
// cached region map (range, epoch, primary, replicas per region); in
// standalone mode the simulated cluster's replication state.
func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if rt := s.engine.Router(); rt != nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"mode":    "router",
			"regions": rt.Topology(),
			"peers":   rt.PeerHealth(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"mode":    "standalone",
		"regions": s.engine.Cluster().ReplicationState(),
	})
}

// handleMetrics exposes the storage counters: the scan pipeline's
// pairs-scanned / rows-kept stage counters, the write path's
// group-commit, WAL-sync, flush-queue and write-stall counters, the
// replication shipping/failover counters and the cursor-cache gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.engine.Store().Metrics()
	s.mu.Lock()
	s.gcLocked()
	openCursors := len(s.cursors)
	cursorBytes := s.cursorBytes
	evicted, expired := s.evicted, s.expired
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"regions":                   s.engine.Store().Regions(),
		"bytes_written":             m.BytesWritten,
		"bytes_read":                m.BytesRead,
		"blocks_read":               m.BlocksRead,
		"block_cache_hits":          m.BlockCacheHits,
		"block_cache_misses":        m.BlockCacheMisses,
		"bloom_negatives":           m.BloomNegatives,
		"flushes":                   m.Flushes,
		"compactions":               m.Compactions,
		"scan_tasks":                m.ScanTasks,
		"scan_pairs":                m.ScanPairs,
		"scan_kept":                 m.ScanKept,
		"scan_batches":              m.ScanBatches,
		"blocks_skipped":            m.BlocksSkipped,
		"batches_decoded":           m.BatchesDecoded,
		"stats_refreshes":           s.engine.StatsRefreshes(),
		"group_commits":             m.GroupCommits,
		"group_commit_records":      m.GroupCommitRecords,
		"wal_syncs":                 m.WALSyncs,
		"wal_sync_bytes":            m.WALSyncBytes,
		"flush_queue_depth":         m.FlushQueueDepth,
		"write_stalls":              m.WriteStalls,
		"write_stall_nanos":         m.WriteStallNanos,
		"shipped_batches":           m.ShippedBatches,
		"shipped_bytes":             m.ShippedBytes,
		"replica_applies":           m.ReplicaApplies,
		"replica_rejects":           m.ReplicaRejects,
		"replica_lag_max":           m.ReplicaLagMax,
		"failovers":                 m.Failovers,
		"failover_reads":            m.FailoverReads,
		"stale_reads":               m.StaleReads,
		"corruptions_detected":      m.CorruptionsDetected,
		"read_retries":              m.ReadRetries,
		"blocks_scrubbed":           m.BlocksScrubbed,
		"scrub_runs":                m.ScrubRuns,
		"tables_quarantined":        m.TablesQuarantined,
		"repairs_completed":         m.RepairsCompleted,
		"orphans_removed":           m.OrphansRemoved,
		"rpc_bytes_in":              m.RPCBytesIn,
		"rpc_bytes_out":             m.RPCBytesOut,
		"rpc_retries":               m.RPCRetries,
		"rpc_redials":               m.RPCRedials,
		"rpc_hedges":                m.RPCHedges,
		"rpc_hedge_wins":            m.RPCHedgeWins,
		"breaker_opens":             m.BreakerOpens,
		"breaker_fast_fails":        m.BreakerFastFails,
		"deadline_aborts":           m.DeadlineAborts,
		"scan_cancels":              m.ScanCancels,
		"region_splits":             m.RegionSplits,
		"region_merges":             m.RegionMerges,
		"region_moves":              m.RegionMoves,
		"stale_map_refreshes":       m.StaleMapRefreshes,
		"cursors_open":              openCursors,
		"cursor_bytes":              cursorBytes,
		"cursors_evicted":           evicted,
		"cursors_expired":           expired,
		"queries_admitted":          s.adm.admitted.Load(),
		"queries_queued":            s.adm.queued.Load(),
		"queries_shed":              s.adm.shed.Load(),
		"queries_canceled":          s.canceled.Load(),
		"queries_deadline_exceeded": s.deadlineExceeded.Load(),
		"queries_mem_budget_kills":  s.memBudgetKills.Load(),
		"queries_killed":            s.registry.killed.Load(),
		"queries_active":            s.registry.count(),
		"peak_query_bytes":          s.peakQueryBytes.Load(),
		"slow_queries":              s.slowQueries.Load(),
		"codecs":                    compress.Stats(),
		"compactions_deferred":      m.CompactionsDeferred,
		"jobs":                      s.engine.Jobs().Metrics(),
		"jobs_healthy":              s.engine.Jobs().Healthy(),
		"disk_pressure":             s.engine.Jobs().Pressured(),
		"disk_free_bytes":           s.engine.Jobs().DiskFree(),
	})
}

// handleReplication exposes per-region replication topology and apply
// lag, plus scrub progress: GET /api/v1/admin/replication.
func (s *Server) handleReplication(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	c := s.cluster(w)
	if c == nil {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"regions": c.ReplicationState(),
		"scrub":   c.ScrubState(),
	})
}

// handleScrub reports integrity/scrub status: GET /api/v1/admin/scrub.
func (s *Server) handleScrub(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	c := s.cluster(w)
	if c == nil {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"scrub": c.ScrubState(),
	})
}

// handleScrubRun runs a synchronous scrub-and-repair pass over every
// SSTable block on every node: POST /api/v1/admin/scrub/run. The
// response reports the pass's outcome; an error field means corruption
// was found that could not be repaired (no replicas).
func (s *Server) handleScrubRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	c := s.cluster(w)
	if c == nil {
		return
	}
	resp := map[string]any{}
	if err := c.Scrub(r.Context()); err != nil {
		resp["error"] = err.Error()
	}
	resp["scrub"] = c.ScrubState()
	writeJSON(w, http.StatusOK, resp)
}

// statsRefreshRequest is the body of POST /api/v1/admin/stats/refresh.
type statsRefreshRequest struct {
	User  string `json:"user"`
	Table string `json:"table"`
}

// handleStatsRefresh recollects planner statistics for a table (the
// ANALYZE entry point): POST /api/v1/admin/stats/refresh with
// {"user": ..., "table": ...}. The response summarizes the fresh
// snapshot; subsequent scans of the table plan cost-based from it.
func (s *Server) handleStatsRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req statsRefreshRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body", http.StatusBadRequest)
		return
	}
	if req.User == "" {
		req.User = r.Header.Get("X-JUST-User")
	}
	st, err := s.engine.RefreshStats(r.Context(), req.User, req.Table)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	indexes := map[string]any{}
	for id, is := range st.Indexes {
		indexes[strconv.Itoa(int(id))] = map[string]any{
			"keys":        is.Keys,
			"sample_size": len(is.Sample),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"table":           req.Table,
		"row_count":       st.RowCount,
		"collected_at_ms": st.CollectedAtMS,
		"indexes":         indexes,
	})
}

// serverActionRequest is the body of POST /api/v1/admin/servers: a
// failure-injection action against one simulated region server.
type serverActionRequest struct {
	ID     int    `json:"id"`
	Action string `json:"action"` // "kill" or "revive"
}

// handleServers lists region servers (GET) or kills/revives one (POST)
// for chaos drills: POST {"id": 2, "action": "kill"}.
func (s *Server) handleServers(w http.ResponseWriter, r *http.Request) {
	c := s.cluster(w)
	if c == nil {
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{
			"servers": c.ServerStates(),
		})
	case http.MethodPost:
		var req serverActionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad request: " + err.Error()})
			return
		}
		var err error
		switch req.Action {
		case "kill":
			err = c.KillServer(req.ID)
		case "revive":
			err = c.ReviveServer(req.ID)
		default:
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("unknown action %q", req.Action)})
			return
		}
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"servers": c.ServerStates(),
		})
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

// truncateSQL bounds statements for the slow-query log.
func truncateSQL(q string) string {
	const max = 200
	if len(q) > max {
		return q[:max] + "..."
	}
	return q
}

// handleQueries lists in-flight queries: GET /api/v1/admin/queries.
func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"queries": s.registry.snapshot(s.now()),
	})
}

// killRequest is the body of POST /api/v1/admin/queries/kill.
type killRequest struct {
	ID int64 `json:"id"`
}

// handleQueryKill cancels one in-flight query by id. The victim fails
// with a typed canceled error (code "killed" in its response).
func (s *Server) handleQueryKill(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req killRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad request: " + err.Error()})
		return
	}
	if !s.registry.kill(req.ID) {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "no such query: " + strconv.FormatInt(req.ID, 10)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"killed": req.ID})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// encodeRow converts engine values into JSON-friendly forms: geometry to
// WKT, st_series to [[lng,lat,t]...], bytes to base64.
func encodeRow(row exec.Row) []any {
	out := make([]any, len(row))
	for i, v := range row {
		out[i] = encodeValue(v)
	}
	return out
}

func encodeValue(v any) any {
	switch x := v.(type) {
	case geom.Geometry:
		return map[string]any{"wkt": x.WKT()}
	case []geom.TPoint:
		pts := make([][3]float64, len(x))
		for i, p := range x {
			pts[i] = [3]float64{p.Lng, p.Lat, float64(p.T)}
		}
		return map[string]any{"st_series": pts}
	case []byte:
		return map[string]any{"bytes": base64.StdEncoding.EncodeToString(x)}
	default:
		return v
	}
}
