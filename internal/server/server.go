// Package server implements JUST's service layer (Section VII): an HTTP
// PaaS front end over one shared engine. All users share the engine's
// execution context (the paper's shared Spark context); each user gets a
// private table/view namespace; large results are returned in multiple
// transmissions through cursors, which the SDKs page through
// transparently (Fig. 2).
package server

import (
	"container/list"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"just/internal/core"
	"just/internal/exec"
	"just/internal/geom"
	"just/internal/sql"
)

// Options tune the server.
type Options struct {
	// PageSize bounds rows per transmission; default 1000 (the paper's
	// configurable split threshold).
	PageSize int
	// CursorTTL expires abandoned cursors; default 5 minutes.
	CursorTTL time.Duration
	// MaxCursors bounds how many open cursors the server retains;
	// default 256. When exceeded, the least recently used cursor is
	// evicted (a later fetch on it reports "unknown or expired").
	MaxCursors int
	// MaxCursorBytes bounds the estimated memory held by open cursors;
	// default 64 MiB. LRU eviction applies, but the most recently
	// stored cursor is always kept even if it alone exceeds the bound.
	MaxCursorBytes int64
}

func (o Options) withDefaults() Options {
	if o.PageSize <= 0 {
		o.PageSize = 1000
	}
	if o.CursorTTL <= 0 {
		o.CursorTTL = 5 * time.Minute
	}
	if o.MaxCursors <= 0 {
		o.MaxCursors = 256
	}
	if o.MaxCursorBytes <= 0 {
		o.MaxCursorBytes = 64 << 20
	}
	return o
}

// Server is the HTTP front end.
type Server struct {
	engine *core.Engine
	opts   Options

	mu          sync.Mutex
	cursors     map[string]*cursor
	lru         *list.List // front = most recently used; values are *cursor
	cursorBytes int64      // estimated memory held by open cursors
	evicted     int64      // cursors dropped by the LRU bound
	expired     int64      // cursors dropped by the TTL
	nextID      int64
	now         func() time.Time
}

type cursor struct {
	id      string
	rows    [][]any
	columns []string
	bytes   int64 // estimated memory footprint
	expires time.Time
	elem    *list.Element
}

// New creates a server over an engine.
func New(engine *core.Engine, opts Options) *Server {
	return &Server{
		engine:  engine,
		opts:    opts.withDefaults(),
		cursors: map[string]*cursor{},
		lru:     list.New(),
		now:     time.Now,
	}
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/sql", s.handleSQL)
	mux.HandleFunc("/api/v1/fetch", s.handleFetch)
	mux.HandleFunc("/api/v1/health", s.handleHealth)
	mux.HandleFunc("/api/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/api/v1/admin/replication", s.handleReplication)
	mux.HandleFunc("/api/v1/admin/servers", s.handleServers)
	mux.HandleFunc("/api/v1/admin/scrub", s.handleScrub)
	mux.HandleFunc("/api/v1/admin/scrub/run", s.handleScrubRun)
	return mux
}

// sqlRequest is the body of POST /api/v1/sql.
type sqlRequest struct {
	User string `json:"user"`
	SQL  string `json:"sql"`
}

// sqlResponse carries the first page of a result.
type sqlResponse struct {
	Message string   `json:"message,omitempty"`
	Columns []string `json:"columns,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`
	Cursor  string   `json:"cursor,omitempty"`
	Total   int      `json:"total"`
	Error   string   `json:"error,omitempty"`
}

func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req sqlRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, sqlResponse{Error: "bad request: " + err.Error()})
		return
	}
	if req.User == "" {
		req.User = r.Header.Get("X-JUST-User")
	}
	sess := sql.NewSession(s.engine, req.User)
	res, err := sess.Execute(req.SQL)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, sqlResponse{Error: err.Error()})
		return
	}
	resp := sqlResponse{Message: res.Message}
	if res.Frame != nil {
		resp.Columns = res.Frame.Schema().Names()
		all := res.Frame.Collect()
		resp.Total = len(all)
		encoded := make([][]any, len(all))
		for i, row := range all {
			encoded[i] = encodeRow(row)
		}
		res.Frame.Release()
		if len(encoded) > s.opts.PageSize {
			resp.Rows = encoded[:s.opts.PageSize]
			resp.Cursor = s.storeCursor(resp.Columns, encoded[s.opts.PageSize:])
		} else {
			resp.Rows = encoded
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) storeCursor(columns []string, rest [][]any) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gcLocked()
	s.nextID++
	c := &cursor{
		id:      fmt.Sprintf("cur-%d", s.nextID),
		rows:    rest,
		columns: columns,
		bytes:   estimateRows(rest),
		expires: s.now().Add(s.opts.CursorTTL),
	}
	s.cursors[c.id] = c
	c.elem = s.lru.PushFront(c)
	s.cursorBytes += c.bytes
	// Evict least-recently-used cursors past the count/byte bounds. The
	// newest cursor survives even when oversized on its own: its id was
	// (or is about to be) handed to a client.
	for s.lru.Len() > 1 && (s.lru.Len() > s.opts.MaxCursors || s.cursorBytes > s.opts.MaxCursorBytes) {
		s.removeLocked(s.lru.Back().Value.(*cursor))
		s.evicted++
	}
	return c.id
}

// removeLocked detaches a cursor from the map, the LRU list and the
// byte accounting.
func (s *Server) removeLocked(c *cursor) {
	delete(s.cursors, c.id)
	s.lru.Remove(c.elem)
	s.cursorBytes -= c.bytes
}

func (s *Server) gcLocked() {
	now := s.now()
	for _, c := range s.cursors {
		if c.expires.Before(now) {
			s.removeLocked(c)
			s.expired++
		}
	}
}

// estimateRows approximates the memory a cursor's buffered rows hold —
// value payloads plus slice/interface overhead — for the cursor-cache
// byte bound. It is an estimate, not an exact accounting.
func estimateRows(rows [][]any) int64 {
	var n int64
	for _, row := range rows {
		n += 24 // row slice header
		for _, v := range row {
			n += 16 // interface header
			switch x := v.(type) {
			case string:
				n += int64(len(x))
			case map[string]any:
				for k, mv := range x {
					n += int64(len(k)) + 16
					switch y := mv.(type) {
					case string:
						n += int64(len(y))
					case [][3]float64:
						n += int64(len(y)) * 24
					default:
						n += 8
					}
				}
			default:
				n += 8
			}
		}
	}
	return n
}

func (s *Server) handleFetch(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("cursor")
	s.mu.Lock()
	s.gcLocked()
	c, ok := s.cursors[id]
	if ok {
		s.removeLocked(c)
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, sqlResponse{Error: "unknown or expired cursor"})
		return
	}
	resp := sqlResponse{Columns: c.columns, Total: len(c.rows)}
	if len(c.rows) > s.opts.PageSize {
		resp.Rows = c.rows[:s.opts.PageSize]
		resp.Cursor = s.storeCursor(c.columns, c.rows[s.opts.PageSize:])
	} else {
		resp.Rows = c.rows
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"regions": s.engine.Cluster().Regions(),
	})
}

// handleMetrics exposes the storage counters: the scan pipeline's
// pairs-scanned / rows-kept stage counters, the write path's
// group-commit, WAL-sync, flush-queue and write-stall counters, the
// replication shipping/failover counters and the cursor-cache gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.engine.Cluster().Metrics()
	s.mu.Lock()
	s.gcLocked()
	openCursors := len(s.cursors)
	cursorBytes := s.cursorBytes
	evicted, expired := s.evicted, s.expired
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"regions":              s.engine.Cluster().Regions(),
		"bytes_written":        m.BytesWritten,
		"bytes_read":           m.BytesRead,
		"blocks_read":          m.BlocksRead,
		"block_cache_hits":     m.BlockCacheHits,
		"block_cache_misses":   m.BlockCacheMisses,
		"bloom_negatives":      m.BloomNegatives,
		"flushes":              m.Flushes,
		"compactions":          m.Compactions,
		"scan_tasks":           m.ScanTasks,
		"scan_pairs":           m.ScanPairs,
		"scan_kept":            m.ScanKept,
		"scan_batches":         m.ScanBatches,
		"group_commits":        m.GroupCommits,
		"group_commit_records": m.GroupCommitRecords,
		"wal_syncs":            m.WALSyncs,
		"wal_sync_bytes":       m.WALSyncBytes,
		"flush_queue_depth":    m.FlushQueueDepth,
		"write_stalls":         m.WriteStalls,
		"write_stall_nanos":    m.WriteStallNanos,
		"shipped_batches":      m.ShippedBatches,
		"shipped_bytes":        m.ShippedBytes,
		"replica_applies":      m.ReplicaApplies,
		"replica_rejects":      m.ReplicaRejects,
		"replica_lag_max":      m.ReplicaLagMax,
		"failovers":            m.Failovers,
		"failover_reads":       m.FailoverReads,
		"stale_reads":          m.StaleReads,
		"corruptions_detected": m.CorruptionsDetected,
		"read_retries":         m.ReadRetries,
		"blocks_scrubbed":      m.BlocksScrubbed,
		"scrub_runs":           m.ScrubRuns,
		"tables_quarantined":   m.TablesQuarantined,
		"repairs_completed":    m.RepairsCompleted,
		"orphans_removed":      m.OrphansRemoved,
		"cursors_open":         openCursors,
		"cursor_bytes":         cursorBytes,
		"cursors_evicted":      evicted,
		"cursors_expired":      expired,
	})
}

// handleReplication exposes per-region replication topology and apply
// lag, plus scrub progress: GET /api/v1/admin/replication.
func (s *Server) handleReplication(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"regions": s.engine.Cluster().ReplicationState(),
		"scrub":   s.engine.Cluster().ScrubState(),
	})
}

// handleScrub reports integrity/scrub status: GET /api/v1/admin/scrub.
func (s *Server) handleScrub(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"scrub": s.engine.Cluster().ScrubState(),
	})
}

// handleScrubRun runs a synchronous scrub-and-repair pass over every
// SSTable block on every node: POST /api/v1/admin/scrub/run. The
// response reports the pass's outcome; an error field means corruption
// was found that could not be repaired (no replicas).
func (s *Server) handleScrubRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	resp := map[string]any{}
	if err := s.engine.Cluster().Scrub(); err != nil {
		resp["error"] = err.Error()
	}
	resp["scrub"] = s.engine.Cluster().ScrubState()
	writeJSON(w, http.StatusOK, resp)
}

// serverActionRequest is the body of POST /api/v1/admin/servers: a
// failure-injection action against one simulated region server.
type serverActionRequest struct {
	ID     int    `json:"id"`
	Action string `json:"action"` // "kill" or "revive"
}

// handleServers lists region servers (GET) or kills/revives one (POST)
// for chaos drills: POST {"id": 2, "action": "kill"}.
func (s *Server) handleServers(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{
			"servers": s.engine.Cluster().ServerStates(),
		})
	case http.MethodPost:
		var req serverActionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad request: " + err.Error()})
			return
		}
		var err error
		switch req.Action {
		case "kill":
			err = s.engine.Cluster().KillServer(req.ID)
		case "revive":
			err = s.engine.Cluster().ReviveServer(req.ID)
		default:
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("unknown action %q", req.Action)})
			return
		}
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"servers": s.engine.Cluster().ServerStates(),
		})
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// encodeRow converts engine values into JSON-friendly forms: geometry to
// WKT, st_series to [[lng,lat,t]...], bytes to base64.
func encodeRow(row exec.Row) []any {
	out := make([]any, len(row))
	for i, v := range row {
		out[i] = encodeValue(v)
	}
	return out
}

func encodeValue(v any) any {
	switch x := v.(type) {
	case geom.Geometry:
		return map[string]any{"wkt": x.WKT()}
	case []geom.TPoint:
		pts := make([][3]float64, len(x))
		for i, p := range x {
			pts[i] = [3]float64{p.Lng, p.Lat, float64(p.T)}
		}
		return map[string]any{"st_series": pts}
	case []byte:
		return map[string]any{"bytes": base64.StdEncoding.EncodeToString(x)}
	default:
		return v
	}
}
