package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"just/internal/core"
	"just/internal/geom"
	"just/internal/kv"
	"just/pkg/client"
)

func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Server) {
	t.Helper()
	eng, err := core.Open(core.Config{
		Dir:     t.TempDir(),
		Workers: 2,
		Cluster: kv.ClusterOptions{Options: kv.Options{DisableWAL: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	s := New(eng, opts)
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

func post(t *testing.T, url, user, sqlText string) sqlResponse {
	t.Helper()
	body, _ := json.Marshal(sqlRequest{User: user, SQL: sqlText})
	resp, err := http.Post(url+"/api/v1/sql", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out sqlResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestServerDDLAndQuery(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	res := post(t, ts.URL, "u1", `CREATE TABLE p (fid integer:primary key, geom point)`)
	if res.Error != "" || !strings.Contains(res.Message, "created") {
		t.Fatalf("create = %+v", res)
	}
	res = post(t, ts.URL, "u1", `INSERT INTO p VALUES (1, st_makePoint(116.4, 39.9))`)
	if res.Error != "" {
		t.Fatalf("insert = %+v", res)
	}
	res = post(t, ts.URL, "u1", `SELECT fid, geom FROM p WHERE geom WITHIN st_makeMBR(116, 39, 117, 40)`)
	if res.Error != "" || res.Total != 1 {
		t.Fatalf("select = %+v", res)
	}
	if res.Columns[1] != "geom" {
		t.Fatalf("columns = %v", res.Columns)
	}
	g, ok := res.Rows[0][1].(map[string]any)
	if !ok || !strings.HasPrefix(g["wkt"].(string), "POINT") {
		t.Fatalf("geometry encoding = %v", res.Rows[0][1])
	}
}

func TestServerErrors(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	res := post(t, ts.URL, "u1", `SELEKT * FROM x`)
	if res.Error == "" {
		t.Fatal("bad SQL should report an error")
	}
	resp, err := http.Get(ts.URL + "/api/v1/sql")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/api/v1/fetch?cursor=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus cursor status = %d", resp.StatusCode)
	}
}

func TestServerHealth(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/api/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health = %d", resp.StatusCode)
	}
}

func TestCursorPagingWithSDK(t *testing.T) {
	ts, _ := newTestServer(t, Options{PageSize: 10})
	c := client.Connect(ts.URL, "u1")
	if err := c.Health(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(`CREATE TABLE p (fid integer:primary key, geom point)`); err != nil {
		t.Fatal(err)
	}
	var values []string
	for i := 0; i < 35; i++ {
		values = append(values, fmt.Sprintf("(%d, st_makePoint(%g, 39.9))", i, 116.0+float64(i)*0.001))
	}
	if _, err := c.Execute(`INSERT INTO p VALUES ` + strings.Join(values, ",")); err != nil {
		t.Fatal(err)
	}
	rs, err := c.ExecuteQuery(`SELECT fid FROM p WHERE geom WITHIN st_makeMBR(115,39,117,40) ORDER BY fid`)
	if err != nil {
		t.Fatal(err)
	}
	// 35 rows with page size 10: the Fig. 2 multi-transmission path.
	n := 0
	for rs.HasNext() {
		row, err := rs.Next()
		if err != nil {
			t.Fatal(err)
		}
		if int(row[0].(float64)) != n {
			t.Fatalf("row %d = %v", n, row)
		}
		n++
	}
	if rs.Err() != nil {
		t.Fatal(rs.Err())
	}
	if n != 35 {
		t.Fatalf("paged through %d rows, want 35", n)
	}
}

func TestCursorExpiry(t *testing.T) {
	ts, s := newTestServer(t, Options{PageSize: 5, CursorTTL: time.Minute})
	now := time.Unix(0, 0)
	s.now = func() time.Time { return now }
	c := client.Connect(ts.URL, "u1")
	c.Execute(`CREATE TABLE p (fid integer:primary key, geom point)`)
	var values []string
	for i := 0; i < 20; i++ {
		values = append(values, fmt.Sprintf("(%d, st_makePoint(116.0, 39.9))", i))
	}
	c.Execute(`INSERT INTO p VALUES ` + strings.Join(values, ","))
	rs, err := c.ExecuteQuery(`SELECT fid FROM p WHERE geom WITHIN st_makeMBR(115,39,117,40)`)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the first page, then let the cursor expire.
	for i := 0; i < 5; i++ {
		if !rs.HasNext() {
			t.Fatal("first page short")
		}
		rs.Next()
	}
	now = now.Add(2 * time.Minute)
	if rs.HasNext() {
		t.Fatal("expired cursor should stop paging")
	}
	if rs.Err() == nil {
		t.Fatal("expiry should surface as an error")
	}
}

func TestEncodeValueForms(t *testing.T) {
	got := encodeValue([]geom.TPoint{{Point: geom.Point{Lng: 1, Lat: 2}, T: 3}})
	m, ok := got.(map[string]any)
	if !ok {
		t.Fatalf("st_series encoded as %T", got)
	}
	pts := m["st_series"].([][3]float64)
	if len(pts) != 1 || pts[0] != [3]float64{1, 2, 3} {
		t.Fatalf("st_series = %v", pts)
	}
	b := encodeValue([]byte{1, 2, 3}).(map[string]any)
	if b["bytes"] != "AQID" {
		t.Fatalf("bytes = %v", b)
	}
	if encodeValue(int64(5)) != int64(5) {
		t.Fatal("scalars pass through")
	}
	g := encodeValue(geom.Point{Lng: 1, Lat: 2}).(map[string]any)
	if g["wkt"] != "POINT (1 2)" {
		t.Fatalf("wkt = %v", g)
	}
}

func TestUserIsolationOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	a := client.Connect(ts.URL, "alice")
	b := client.Connect(ts.URL, "bob")
	a.Execute(`CREATE TABLE t (fid integer:primary key, geom point)`)
	a.Execute(`INSERT INTO t VALUES (1, st_makePoint(1,1))`)
	if _, err := b.ExecuteQuery(`SELECT * FROM t`); err == nil {
		t.Fatal("bob should not see alice's table")
	}
}

func TestServerMetrics(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	post(t, ts.URL, "u1", `CREATE TABLE p (fid integer:primary key, geom point)`)
	for i := 0; i < 5; i++ {
		post(t, ts.URL, "u1", fmt.Sprintf(`INSERT INTO p VALUES (%d, st_makePoint(116.4, 39.9))`, i))
	}
	post(t, ts.URL, "u1", `SELECT fid FROM p WHERE geom WITHIN st_makeMBR(116, 39, 117, 40)`)
	resp, err := http.Get(ts.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"regions", "scan_tasks", "scan_pairs", "scan_kept"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q: %v", key, m)
		}
	}
	if m["scan_pairs"].(float64) <= 0 {
		t.Errorf("scan_pairs = %v, want > 0 after a scan", m["scan_pairs"])
	}
}

// newReplicatedServer starts a server over a replicated cluster so the
// admin/replication endpoints have a real topology behind them.
func newReplicatedServer(t *testing.T, opts Options) (*httptest.Server, *Server) {
	t.Helper()
	eng, err := core.Open(core.Config{
		Dir:     t.TempDir(),
		Workers: 2,
		Cluster: kv.ClusterOptions{Servers: 3, Replication: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	s := New(eng, opts)
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAdminReplicationEndpoint(t *testing.T) {
	ts, s := newReplicatedServer(t, Options{})
	if err := s.engine.Cluster().Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	m := getJSON(t, ts.URL+"/api/v1/admin/replication")
	regions, ok := m["regions"].([]any)
	if !ok || len(regions) == 0 {
		t.Fatalf("replication state = %v", m)
	}
	nodes := regions[0].(map[string]any)["nodes"].([]any)
	if len(nodes) != 2 {
		t.Fatalf("nodes = %v, want leader+replica", nodes)
	}
	if nodes[0].(map[string]any)["role"] != "leader" {
		t.Fatalf("first node = %v, want leader", nodes[0])
	}
}

func TestAdminServersKillRevive(t *testing.T) {
	ts, s := newReplicatedServer(t, Options{})
	m := getJSON(t, ts.URL+"/api/v1/admin/servers")
	if servers := m["servers"].([]any); len(servers) != 3 {
		t.Fatalf("servers = %v", m)
	}
	kill := func(action string, id int, wantStatus int) map[string]any {
		t.Helper()
		body, _ := json.Marshal(serverActionRequest{ID: id, Action: action})
		resp, err := http.Post(ts.URL+"/api/v1/admin/servers", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s(%d) status = %d, want %d", action, id, resp.StatusCode, wantStatus)
		}
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		return out
	}
	out := kill("kill", 1, http.StatusOK)
	if down := out["servers"].([]any)[1].(map[string]any)["down"]; down != true {
		t.Fatalf("server 1 not reported down: %v", out)
	}
	if !s.engine.Cluster().ServerStates()[1].Down {
		t.Fatal("kill did not reach the cluster")
	}
	kill("revive", 1, http.StatusOK)
	if s.engine.Cluster().ServerStates()[1].Down {
		t.Fatal("revive did not reach the cluster")
	}
	kill("explode", 1, http.StatusBadRequest)
	kill("kill", 99, http.StatusBadRequest)
}

func TestReplicationMetricsKeys(t *testing.T) {
	ts, s := newReplicatedServer(t, Options{})
	if err := s.engine.Cluster().Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.engine.Cluster().SyncReplicas(); err != nil {
		t.Fatal(err)
	}
	m := getJSON(t, ts.URL+"/api/v1/metrics")
	for _, key := range []string{
		"shipped_batches", "shipped_bytes", "replica_applies", "replica_rejects",
		"replica_lag_max", "failovers", "failover_reads", "stale_reads",
		"cursors_open", "cursor_bytes", "cursors_evicted", "cursors_expired",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	if m["shipped_batches"].(float64) <= 0 {
		t.Errorf("shipped_batches = %v, want > 0", m["shipped_batches"])
	}
	if m["replica_applies"].(float64) <= 0 {
		t.Errorf("replica_applies = %v, want > 0", m["replica_applies"])
	}
}

// TestCursorLRUBounds checks the cursor cache evicts least-recently-
// used cursors past the configured count bound, and that byte
// accounting tracks stores and fetches.
func TestCursorLRUBounds(t *testing.T) {
	ts, s := newTestServer(t, Options{PageSize: 2, MaxCursors: 3})
	c := client.Connect(ts.URL, "u1")
	c.Execute(`CREATE TABLE p (fid integer:primary key, geom point)`)
	var values []string
	for i := 0; i < 10; i++ {
		values = append(values, fmt.Sprintf("(%d, st_makePoint(116.0, 39.9))", i))
	}
	c.Execute(`INSERT INTO p VALUES ` + strings.Join(values, ","))

	// Each query leaves one open cursor (10 rows, page size 2).
	var ids []string
	for i := 0; i < 5; i++ {
		res := post(t, ts.URL, "u1", `SELECT fid FROM p WHERE geom WITHIN st_makeMBR(115,39,117,40)`)
		if res.Cursor == "" {
			t.Fatalf("query %d left no cursor", i)
		}
		ids = append(ids, res.Cursor)
	}
	s.mu.Lock()
	open, bytes, evicted := len(s.cursors), s.cursorBytes, s.evicted
	s.mu.Unlock()
	if open != 3 {
		t.Fatalf("open cursors = %d, want 3 (MaxCursors)", open)
	}
	if evicted != 2 {
		t.Fatalf("evicted = %d, want 2", evicted)
	}
	if bytes <= 0 {
		t.Fatalf("cursorBytes = %d, want > 0", bytes)
	}

	// The two oldest cursors were evicted; the newest still pages.
	for _, id := range ids[:2] {
		resp, err := http.Get(ts.URL + "/api/v1/fetch?cursor=" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("evicted cursor %s fetch = %d, want 404", id, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/api/v1/fetch?cursor=" + ids[4])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live cursor fetch = %d", resp.StatusCode)
	}
}

// TestCursorByteBound: a tiny byte budget keeps only the newest cursor.
func TestCursorByteBound(t *testing.T) {
	ts, s := newTestServer(t, Options{PageSize: 2, MaxCursorBytes: 1})
	c := client.Connect(ts.URL, "u1")
	c.Execute(`CREATE TABLE p (fid integer:primary key, geom point)`)
	var values []string
	for i := 0; i < 10; i++ {
		values = append(values, fmt.Sprintf("(%d, st_makePoint(116.0, 39.9))", i))
	}
	c.Execute(`INSERT INTO p VALUES ` + strings.Join(values, ","))
	for i := 0; i < 3; i++ {
		if res := post(t, ts.URL, "u1", `SELECT fid FROM p WHERE geom WITHIN st_makeMBR(115,39,117,40)`); res.Cursor == "" {
			t.Fatalf("query %d left no cursor", i)
		}
	}
	s.mu.Lock()
	open := len(s.cursors)
	s.mu.Unlock()
	if open != 1 {
		t.Fatalf("open cursors = %d, want 1 (newest survives a 1-byte budget)", open)
	}
}

// TestAdminScrubEndpoints: GET reports integrity state, POST runs a
// synchronous scrub pass, and the integrity counters are on /metrics.
func TestAdminScrubEndpoints(t *testing.T) {
	ts, s := newReplicatedServer(t, Options{})
	if err := s.engine.Cluster().Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.engine.Cluster().Flush(); err != nil {
		t.Fatal(err)
	}

	m := getJSON(t, ts.URL+"/api/v1/admin/scrub")
	scrub, ok := m["scrub"].(map[string]any)
	if !ok {
		t.Fatalf("scrub state = %v", m)
	}
	if scrub["runs"].(float64) != 0 {
		t.Fatalf("runs before any scrub = %v", scrub["runs"])
	}
	if nodes := scrub["nodes"].([]any); len(nodes) == 0 {
		t.Fatalf("no nodes in scrub state: %v", scrub)
	}

	resp, err := http.Post(ts.URL+"/api/v1/admin/scrub/run", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrub/run status = %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if errMsg, ok := out["error"]; ok {
		t.Fatalf("scrub reported error on healthy store: %v", errMsg)
	}
	scrub = out["scrub"].(map[string]any)
	if scrub["runs"].(float64) != 1 || scrub["blocks_scrubbed"].(float64) == 0 {
		t.Fatalf("scrub after run = %v", scrub)
	}

	// GET on the run endpoint and POST on the state endpoint are rejected.
	if r2, _ := http.Get(ts.URL + "/api/v1/admin/scrub/run"); r2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET scrub/run = %d", r2.StatusCode)
	}
	if r3, _ := http.Post(ts.URL+"/api/v1/admin/scrub", "application/json", nil); r3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST scrub = %d", r3.StatusCode)
	}

	mm := getJSON(t, ts.URL+"/api/v1/metrics")
	for _, key := range []string{
		"corruptions_detected", "read_retries", "blocks_scrubbed",
		"scrub_runs", "tables_quarantined", "repairs_completed",
		"orphans_removed",
	} {
		if _, ok := mm[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	if mm["blocks_scrubbed"].(float64) == 0 {
		t.Errorf("blocks_scrubbed = %v, want > 0", mm["blocks_scrubbed"])
	}
}
