package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"just/internal/core"
	"just/internal/geom"
	"just/internal/kv"
	"just/pkg/client"
)

func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Server) {
	t.Helper()
	eng, err := core.Open(core.Config{
		Dir:     t.TempDir(),
		Workers: 2,
		Cluster: kv.ClusterOptions{Options: kv.Options{DisableWAL: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	s := New(eng, opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

func post(t *testing.T, url, user, sqlText string) sqlResponse {
	t.Helper()
	body, _ := json.Marshal(sqlRequest{User: user, SQL: sqlText})
	resp, err := http.Post(url+"/api/v1/sql", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out sqlResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestServerDDLAndQuery(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	res := post(t, ts.URL, "u1", `CREATE TABLE p (fid integer:primary key, geom point)`)
	if res.Error != "" || !strings.Contains(res.Message, "created") {
		t.Fatalf("create = %+v", res)
	}
	res = post(t, ts.URL, "u1", `INSERT INTO p VALUES (1, st_makePoint(116.4, 39.9))`)
	if res.Error != "" {
		t.Fatalf("insert = %+v", res)
	}
	res = post(t, ts.URL, "u1", `SELECT fid, geom FROM p WHERE geom WITHIN st_makeMBR(116, 39, 117, 40)`)
	if res.Error != "" || res.Total != 1 {
		t.Fatalf("select = %+v", res)
	}
	if res.Columns[1] != "geom" {
		t.Fatalf("columns = %v", res.Columns)
	}
	g, ok := res.Rows[0][1].(map[string]any)
	if !ok || !strings.HasPrefix(g["wkt"].(string), "POINT") {
		t.Fatalf("geometry encoding = %v", res.Rows[0][1])
	}
}

func TestServerErrors(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	res := post(t, ts.URL, "u1", `SELEKT * FROM x`)
	if res.Error == "" {
		t.Fatal("bad SQL should report an error")
	}
	resp, err := http.Get(ts.URL + "/api/v1/sql")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/api/v1/fetch?cursor=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus cursor status = %d", resp.StatusCode)
	}
}

func TestServerHealth(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/api/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health = %d", resp.StatusCode)
	}
}

func TestCursorPagingWithSDK(t *testing.T) {
	ts, _ := newTestServer(t, Options{PageSize: 10})
	c := client.Connect(ts.URL, "u1")
	if err := c.Health(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(`CREATE TABLE p (fid integer:primary key, geom point)`); err != nil {
		t.Fatal(err)
	}
	var values []string
	for i := 0; i < 35; i++ {
		values = append(values, fmt.Sprintf("(%d, st_makePoint(%g, 39.9))", i, 116.0+float64(i)*0.001))
	}
	if _, err := c.Execute(`INSERT INTO p VALUES ` + strings.Join(values, ",")); err != nil {
		t.Fatal(err)
	}
	rs, err := c.ExecuteQuery(`SELECT fid FROM p WHERE geom WITHIN st_makeMBR(115,39,117,40) ORDER BY fid`)
	if err != nil {
		t.Fatal(err)
	}
	// 35 rows with page size 10: the Fig. 2 multi-transmission path.
	n := 0
	for rs.HasNext() {
		row, err := rs.Next()
		if err != nil {
			t.Fatal(err)
		}
		if int(row[0].(float64)) != n {
			t.Fatalf("row %d = %v", n, row)
		}
		n++
	}
	if rs.Err() != nil {
		t.Fatal(rs.Err())
	}
	if n != 35 {
		t.Fatalf("paged through %d rows, want 35", n)
	}
}

func TestCursorExpiry(t *testing.T) {
	ts, s := newTestServer(t, Options{PageSize: 5, CursorTTL: time.Minute})
	now := time.Unix(0, 0)
	s.now = func() time.Time { return now }
	c := client.Connect(ts.URL, "u1")
	c.Execute(`CREATE TABLE p (fid integer:primary key, geom point)`)
	var values []string
	for i := 0; i < 20; i++ {
		values = append(values, fmt.Sprintf("(%d, st_makePoint(116.0, 39.9))", i))
	}
	c.Execute(`INSERT INTO p VALUES ` + strings.Join(values, ","))
	rs, err := c.ExecuteQuery(`SELECT fid FROM p WHERE geom WITHIN st_makeMBR(115,39,117,40)`)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the first page, then let the cursor expire.
	for i := 0; i < 5; i++ {
		if !rs.HasNext() {
			t.Fatal("first page short")
		}
		rs.Next()
	}
	now = now.Add(2 * time.Minute)
	if rs.HasNext() {
		t.Fatal("expired cursor should stop paging")
	}
	if rs.Err() == nil {
		t.Fatal("expiry should surface as an error")
	}
}

func TestEncodeValueForms(t *testing.T) {
	got := encodeValue([]geom.TPoint{{Point: geom.Point{Lng: 1, Lat: 2}, T: 3}})
	m, ok := got.(map[string]any)
	if !ok {
		t.Fatalf("st_series encoded as %T", got)
	}
	pts := m["st_series"].([][3]float64)
	if len(pts) != 1 || pts[0] != [3]float64{1, 2, 3} {
		t.Fatalf("st_series = %v", pts)
	}
	b := encodeValue([]byte{1, 2, 3}).(map[string]any)
	if b["bytes"] != "AQID" {
		t.Fatalf("bytes = %v", b)
	}
	if encodeValue(int64(5)) != int64(5) {
		t.Fatal("scalars pass through")
	}
	g := encodeValue(geom.Point{Lng: 1, Lat: 2}).(map[string]any)
	if g["wkt"] != "POINT (1 2)" {
		t.Fatalf("wkt = %v", g)
	}
}

func TestUserIsolationOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	a := client.Connect(ts.URL, "alice")
	b := client.Connect(ts.URL, "bob")
	a.Execute(`CREATE TABLE t (fid integer:primary key, geom point)`)
	a.Execute(`INSERT INTO t VALUES (1, st_makePoint(1,1))`)
	if _, err := b.ExecuteQuery(`SELECT * FROM t`); err == nil {
		t.Fatal("bob should not see alice's table")
	}
}

func TestServerMetrics(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	post(t, ts.URL, "u1", `CREATE TABLE p (fid integer:primary key, geom point)`)
	for i := 0; i < 5; i++ {
		post(t, ts.URL, "u1", fmt.Sprintf(`INSERT INTO p VALUES (%d, st_makePoint(116.4, 39.9))`, i))
	}
	post(t, ts.URL, "u1", `SELECT fid FROM p WHERE geom WITHIN st_makeMBR(116, 39, 117, 40)`)
	resp, err := http.Get(ts.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"regions", "scan_tasks", "scan_pairs", "scan_kept"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q: %v", key, m)
		}
	}
	if m["scan_pairs"].(float64) <= 0 {
		t.Errorf("scan_pairs = %v, want > 0 after a scan", m["scan_pairs"])
	}
}
