package sql

import "fmt"

// Statement is any parsed JustQL statement.
type Statement interface{ stmt() }

// ColumnDef is one column in CREATE TABLE: `name type[:mod[:mod...]]`.
type ColumnDef struct {
	Name     string
	TypeName string
	Mods     []string // "primary key", "srid=4326", "compress=gzip"
}

// CreateTableStmt covers both forms of CREATE TABLE.
type CreateTableStmt struct {
	Name     string
	Columns  []ColumnDef // empty for the plugin form
	Plugin   string      // "CREATE TABLE t AS trajectory"
	UserData map[string]string
}

func (*CreateTableStmt) stmt() {}

// CreateViewStmt is CREATE VIEW v AS SELECT ...
type CreateViewStmt struct {
	Name  string
	Query *SelectStmt
}

func (*CreateViewStmt) stmt() {}

// StoreViewStmt is STORE VIEW v TO TABLE t.
type StoreViewStmt struct {
	View  string
	Table string
}

func (*StoreViewStmt) stmt() {}

// DropStmt is DROP TABLE|VIEW name.
type DropStmt struct {
	IsView bool
	Name   string
}

func (*DropStmt) stmt() {}

// ShowStmt is SHOW TABLES|VIEWS.
type ShowStmt struct{ Views bool }

func (*ShowStmt) stmt() {}

// DescStmt is DESC TABLE|VIEW name.
type DescStmt struct {
	IsView bool
	Name   string
}

func (*DescStmt) stmt() {}

// InsertStmt is INSERT INTO t VALUES (...), (...).
type InsertStmt struct {
	Table string
	Rows  [][]Expr
}

func (*InsertStmt) stmt() {}

// LoadStmt is LOAD src:name TO geomesa:table CONFIG {..} [FILTER '..'].
type LoadStmt struct {
	SrcKind string // "csv", "hive", "table"
	Src     string
	Dst     string
	Config  map[string]string
	Filter  string
}

func (*LoadStmt) stmt() {}

// SelectItem is one projection: expression, optional alias, or *.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// FromItem is a table reference or a subquery.
type FromItem struct {
	Table    string
	Subquery *SelectStmt
	Alias    string
}

// JoinClause is an equi-join: `JOIN <right> ON leftCol = rightCol`
// (the paper supports JOINs on views through Spark SQL; JUST lowers them
// to the execution engine's hash join).
type JoinClause struct {
	Right    *FromItem
	Left     bool // LEFT JOIN
	LeftCol  string
	RightCol string
}

// ExplainStmt renders the optimized plan of a query instead of running
// it.
type ExplainStmt struct{ Query *SelectStmt }

func (*ExplainStmt) stmt() {}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Items   []SelectItem
	From    *FromItem
	Join    *JoinClause
	Where   Expr
	GroupBy []Expr
	OrderBy []OrderKey
	Limit   int // -1 = none
}

func (*SelectStmt) stmt() {}

// Expr is any expression node.
type Expr interface{ expr() }

// Ident references a column.
type Ident struct{ Name string }

func (*Ident) expr() {}

// Literal is a constant value: int64, float64, string or bool.
type Literal struct{ Val any }

func (*Literal) expr() {}

// BinaryExpr applies Op to L and R. Ops: OR AND = != < <= > >= + - * /
// WITHIN.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (*BinaryExpr) expr() {}

// UnaryExpr applies Op ("NOT", "-") to X.
type UnaryExpr struct {
	Op string
	X  Expr
}

func (*UnaryExpr) expr() {}

// FuncCall invokes a preset function.
type FuncCall struct {
	Name string
	Args []Expr
}

func (*FuncCall) expr() {}

// BetweenExpr is `X BETWEEN Lo AND Hi`.
type BetweenExpr struct {
	X, Lo, Hi Expr
}

func (*BetweenExpr) expr() {}

// InExpr is `X IN f(...)` — JustQL uses it for k-NN membership.
type InExpr struct {
	X  Expr
	Fn *FuncCall
}

func (*InExpr) expr() {}

// exprString renders an expression for error messages and plan dumps.
func exprString(e Expr) string {
	switch v := e.(type) {
	case *Ident:
		return v.Name
	case *Literal:
		if s, ok := v.Val.(string); ok {
			return fmt.Sprintf("'%s'", s)
		}
		return fmt.Sprintf("%v", v.Val)
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", exprString(v.L), v.Op, exprString(v.R))
	case *UnaryExpr:
		return fmt.Sprintf("(%s %s)", v.Op, exprString(v.X))
	case *FuncCall:
		s := v.Name + "("
		for i, a := range v.Args {
			if i > 0 {
				s += ", "
			}
			s += exprString(a)
		}
		return s + ")"
	case *BetweenExpr:
		return fmt.Sprintf("(%s BETWEEN %s AND %s)", exprString(v.X), exprString(v.Lo), exprString(v.Hi))
	case *InExpr:
		return fmt.Sprintf("(%s IN %s)", exprString(v.X), exprString(v.Fn))
	default:
		return fmt.Sprintf("%T", e)
	}
}
