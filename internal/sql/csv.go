package sql

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"just/internal/exec"
)

// loadCSV implements `LOAD csv:<path> TO geomesa:<table> CONFIG {...}
// [FILTER '...']`. The first CSV record is the header; CONFIG maps table
// columns to expressions over header names (with the preset transform
// functions such as lng_lat_to_point and long_to_date_ms).
func (s *Session) loadCSV(st *LoadStmt) (*Result, error) {
	f, err := os.Open(st.Src)
	if err != nil {
		return nil, fmt.Errorf("sql: LOAD csv: %w", err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("sql: LOAD csv: empty file: %w", err)
	}
	fields := make([]exec.Field, len(header))
	for i, h := range header {
		fields[i] = exec.Field{Name: h, Type: exec.TypeString}
	}
	srcSchema := exec.NewSchema(fields...)

	dst, err := s.engine.OpenTable(s.user, st.Dst)
	if err != nil {
		return nil, err
	}
	mapping, filter, limit, err := compileLoadConfig(st, srcSchema)
	if err != nil {
		return nil, err
	}

	var rows []exec.Row
	for {
		record, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("sql: LOAD csv: %w", err)
		}
		if limit > 0 && len(rows) >= limit {
			break
		}
		src := make(exec.Row, len(header))
		for i := range header {
			if i < len(record) {
				src[i] = parseCSVValue(record[i])
			}
		}
		if filter != nil {
			keep, err := evalExpr(filter, srcSchema, src)
			if err != nil {
				return nil, err
			}
			if b, ok := keep.(bool); !ok || !b {
				continue
			}
		}
		row, err := applyMapping(mapping, dst.Desc.Columns, srcSchema, src)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	if err := s.engine.BulkInsert(dst.Desc.User, dst.Desc.Name, rows); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("loaded %d rows from %s into %s", len(rows), st.Src, st.Dst)}, nil
}

// parseCSVValue types raw CSV cells: integers, floats, then strings.
func parseCSVValue(s string) any {
	if s == "" {
		return nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}
