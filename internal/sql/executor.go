package sql

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"just/internal/analysis"
	"just/internal/core"
	"just/internal/exec"
	"just/internal/geom"
	"just/internal/index"
	"just/internal/kv"
	"just/internal/table"
)

// Session executes JustQL for one user against an engine. Sessions are
// cheap; the engine (and its execution context) is shared, mirroring the
// paper's shared Spark context.
type Session struct {
	engine *core.Engine
	user   string
}

// NewSession creates a session for the given user namespace.
func NewSession(e *core.Engine, user string) *Session {
	return &Session{engine: e, user: user}
}

// Result is the outcome of one statement: a frame for queries, a message
// for DDL/DML.
type Result struct {
	Frame   *exec.DataFrame
	Message string
	// Plan is the optimized logical plan of a SELECT (EXPLAIN-style
	// introspection for tests and the CLI).
	Plan Plan
}

// Execute parses, plans and runs one JustQL statement under a
// background context (no deadline, no cancellation).
func (s *Session) Execute(src string) (*Result, error) {
	return s.ExecuteContext(context.Background(), src)
}

// ExecuteContext parses, plans and runs one JustQL statement. ctx
// cancels the statement end-to-end — scans abort inside the storage
// workers, operators abort between partitions — surfacing as the typed
// exec.ErrQueryCanceled / exec.ErrDeadlineExceeded. A per-query memory
// budget attached with exec.WithQuery is charged by every dataframe
// materialization and scan buffer.
func (s *Session) ExecuteContext(ctx context.Context, src string) (*Result, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return s.ExecuteStmtContext(ctx, stmt)
}

// ExecuteStmt runs an already-parsed statement under a background
// context.
func (s *Session) ExecuteStmt(stmt Statement) (*Result, error) {
	return s.ExecuteStmtContext(context.Background(), stmt)
}

// ExecuteStmtContext runs an already-parsed statement under ctx.
func (s *Session) ExecuteStmtContext(ctx context.Context, stmt Statement) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := exec.MapCtxErr(ctx.Err()); err != nil {
		return nil, err
	}
	switch v := stmt.(type) {
	case *CreateTableStmt:
		return s.execCreateTable(v)
	case *CreateViewStmt:
		return s.execCreateView(ctx, v)
	case *StoreViewStmt:
		return s.execStoreView(ctx, v)
	case *DropStmt:
		return s.execDrop(v)
	case *ShowStmt:
		return s.execShow(v)
	case *DescStmt:
		return s.execDesc(v)
	case *InsertStmt:
		return s.execInsert(ctx, v)
	case *LoadStmt:
		return s.execLoad(ctx, v)
	case *SelectStmt:
		return s.execSelect(ctx, v)
	case *ExplainStmt:
		a := &analyzer{engine: s.engine, user: s.user}
		plan, err := a.analyzeSelect(v.Query)
		if err != nil {
			return nil, err
		}
		plan = Optimize(plan)
		return &Result{Message: PlanString(plan), Plan: plan}, nil
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", stmt)
	}
}

// --- DDL ---

func (s *Session) execCreateTable(st *CreateTableStmt) (*Result, error) {
	if st.Plugin != "" {
		if err := s.engine.CreateTableAs(s.user, st.Name, strings.ToLower(st.Plugin)); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("plugin table %s created", st.Name)}, nil
	}
	desc := &table.Desc{Name: st.Name, User: s.user, Kind: table.KindCommon}
	for _, cd := range st.Columns {
		t, ok := exec.ParseType(cd.TypeName)
		if !ok {
			return nil, fmt.Errorf("sql: unknown type %q for column %q", cd.TypeName, cd.Name)
		}
		col := table.Column{Name: cd.Name, Type: t}
		if t == exec.TypeGeometry {
			col.Subtype = cd.TypeName
		}
		for _, mod := range cd.Mods {
			switch {
			case mod == "primary key":
				col.PrimaryKey = true
			case strings.HasPrefix(mod, "srid="):
				fmt.Sscanf(mod, "srid=%d", &col.SRID)
			case strings.HasPrefix(mod, "compress="):
				col.Compress = strings.TrimPrefix(mod, "compress=")
			default:
				return nil, fmt.Errorf("sql: unknown column modifier %q", mod)
			}
		}
		desc.Columns = append(desc.Columns, col)
	}
	if err := applyUserData(desc, st.UserData); err != nil {
		return nil, err
	}
	if err := s.engine.CreateTable(desc); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("table %s created", st.Name)}, nil
}

// applyUserData interprets the USERDATA hints: `geomesa.indices.enabled`
// selects index strategies (comma-separated), `just.period` sets the
// time-period length (day/week/month/year/century).
func applyUserData(desc *table.Desc, ud map[string]string) error {
	if ud == nil {
		return nil
	}
	var periodMS int64
	if p, ok := ud["just.period"]; ok {
		ms, err := periodByName(p)
		if err != nil {
			return err
		}
		periodMS = ms
	}
	if list, ok := ud["geomesa.indices.enabled"]; ok {
		desc.Indexes = []table.IndexDesc{{Strategy: "attr", ID: 0}}
		for i, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(strings.ToLower(name))
			if name == "" || name == "attr" {
				continue
			}
			if _, ok := index.New(name, index.Config{}); !ok {
				return fmt.Errorf("sql: unknown index strategy %q in USERDATA", name)
			}
			desc.Indexes = append(desc.Indexes, table.IndexDesc{
				Strategy: name, ID: uint8(i + 1), PeriodMS: periodMS,
			})
		}
	} else if periodMS > 0 {
		for i := range desc.Indexes {
			desc.Indexes[i].PeriodMS = periodMS
		}
	}
	return nil
}

func periodByName(name string) (int64, error) {
	day := int64(24 * time.Hour / time.Millisecond)
	switch strings.ToLower(name) {
	case "hour":
		return day / 24, nil
	case "day":
		return day, nil
	case "week":
		return 7 * day, nil
	case "month":
		return 30 * day, nil
	case "year":
		return 365 * day, nil
	case "century":
		return 36500 * day, nil
	default:
		return 0, fmt.Errorf("sql: unknown period %q", name)
	}
}

func (s *Session) execCreateView(ctx context.Context, st *CreateViewStmt) (*Result, error) {
	res, err := s.execSelect(ctx, st.Query)
	if err != nil {
		return nil, err
	}
	s.engine.Views().Put(s.user, st.Name, res.Frame)
	return &Result{Message: fmt.Sprintf("view %s created (%d rows cached)", st.Name, res.Frame.Count())}, nil
}

func (s *Session) execStoreView(ctx context.Context, st *StoreViewStmt) (*Result, error) {
	v, err := s.engine.Views().Get(s.user, st.View)
	if err != nil {
		return nil, err
	}
	schema := v.Frame.Schema()
	// Auto-create the target table from the view schema if missing.
	if _, err := s.engine.Catalog().Get(s.user, st.Table); err != nil {
		desc := &table.Desc{Name: st.Table, User: s.user, Kind: table.KindCommon}
		for _, f := range schema.Fields {
			desc.Columns = append(desc.Columns, table.Column{Name: f.Name, Type: f.Type})
		}
		if len(desc.Columns) > 0 {
			desc.Columns[0].PrimaryKey = true
		}
		if err := s.engine.CreateTable(desc); err != nil {
			return nil, err
		}
	}
	rows := v.Frame.Collect()
	if err := s.engine.BulkInsertContext(ctx, s.user, st.Table, rows); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("stored %d rows from view %s into table %s", len(rows), st.View, st.Table)}, nil
}

func (s *Session) execDrop(st *DropStmt) (*Result, error) {
	if st.IsView {
		if err := s.engine.Views().Drop(s.user, st.Name); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("view %s dropped", st.Name)}, nil
	}
	if err := s.engine.DropTable(s.user, st.Name); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("table %s dropped", st.Name)}, nil
}

func (s *Session) execShow(st *ShowStmt) (*Result, error) {
	var names []string
	label := "table"
	if st.Views {
		names = s.engine.Views().List(s.user)
		label = "view"
	} else {
		names = s.engine.Catalog().List(s.user)
	}
	rows := make([]exec.Row, len(names))
	for i, n := range names {
		rows[i] = exec.Row{n}
	}
	df, err := exec.NewDataFrame(s.engine.Context(),
		exec.NewSchema(exec.Field{Name: label + "_name", Type: exec.TypeString}), rows)
	if err != nil {
		return nil, err
	}
	return &Result{Frame: df}, nil
}

func (s *Session) execDesc(st *DescStmt) (*Result, error) {
	schema := exec.NewSchema(
		exec.Field{Name: "column", Type: exec.TypeString},
		exec.Field{Name: "type", Type: exec.TypeString},
		exec.Field{Name: "modifiers", Type: exec.TypeString},
	)
	var rows []exec.Row
	if st.IsView {
		v, err := s.engine.Views().Get(s.user, st.Name)
		if err != nil {
			return nil, err
		}
		for _, f := range v.Frame.Schema().Fields {
			rows = append(rows, exec.Row{f.Name, f.Type.String(), ""})
		}
	} else {
		d, err := s.engine.Catalog().Get(s.user, st.Name)
		if err != nil {
			return nil, err
		}
		for _, c := range d.Columns {
			var mods []string
			if c.PrimaryKey {
				mods = append(mods, "primary key")
			}
			if c.SRID != 0 {
				mods = append(mods, fmt.Sprintf("srid=%d", c.SRID))
			}
			if c.Compress != "" {
				mods = append(mods, "compress="+c.Compress)
			}
			typeName := c.Type.String()
			if c.Subtype != "" {
				typeName = c.Subtype
			}
			rows = append(rows, exec.Row{c.Name, typeName, strings.Join(mods, ", ")})
		}
	}
	df, err := exec.NewDataFrame(s.engine.Context(), schema, rows)
	if err != nil {
		return nil, err
	}
	return &Result{Frame: df}, nil
}

// --- DML ---

// execInsert evaluates the VALUES rows and writes them all through
// Engine.Insert, which rides Table.InsertBatch — a multi-row INSERT is
// one group commit per touched storage region, not one Put per value.
func (s *Session) execInsert(ctx context.Context, st *InsertStmt) (*Result, error) {
	t, err := s.engine.OpenTable(s.user, st.Table)
	if err != nil {
		return nil, err
	}
	cols := t.Desc.Columns
	var rows []exec.Row
	for _, exprRow := range st.Rows {
		if len(exprRow) != len(cols) {
			return nil, fmt.Errorf("sql: INSERT arity %d != table arity %d", len(exprRow), len(cols))
		}
		row := make(exec.Row, len(cols))
		for i, e := range exprRow {
			v, err := evalExpr(foldExpr(e), nil, nil)
			if err != nil {
				return nil, err
			}
			cv, err := coerceValue(cols[i], v)
			if err != nil {
				return nil, err
			}
			row[i] = cv
		}
		rows = append(rows, row)
	}
	if err := s.engine.InsertContext(ctx, t.Desc.User, t.Desc.Name, rows); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("%d rows inserted into %s", len(rows), st.Table)}, nil
}

// coerceValue adapts a literal to the column type: time strings, WKT
// geometry, int/float widening.
func coerceValue(col table.Column, v any) (any, error) {
	if v == nil {
		return nil, nil
	}
	switch col.Type {
	case exec.TypeTime:
		return toTimeMS(v)
	case exec.TypeGeometry:
		if g, ok := v.(geom.Geometry); ok {
			return g, nil
		}
		if str, ok := v.(string); ok {
			return geom.ParseWKT(str)
		}
		return nil, fmt.Errorf("sql: column %q expects geometry, got %T", col.Name, v)
	case exec.TypeFloat:
		return toFloat(v)
	case exec.TypeInt:
		f, err := toFloat(v)
		if err != nil {
			return nil, fmt.Errorf("sql: column %q: %w", col.Name, err)
		}
		return int64(f), nil
	case exec.TypeString:
		if str, ok := v.(string); ok {
			return str, nil
		}
		return fmt.Sprintf("%v", v), nil
	case exec.TypeBool:
		if b, ok := v.(bool); ok {
			return b, nil
		}
		return nil, fmt.Errorf("sql: column %q expects bool, got %T", col.Name, v)
	default:
		return v, nil
	}
}

// --- SELECT ---

func (s *Session) execSelect(ctx context.Context, st *SelectStmt) (*Result, error) {
	a := &analyzer{engine: s.engine, user: s.user}
	plan, err := a.analyzeSelect(st)
	if err != nil {
		return nil, err
	}
	plan = Optimize(plan)
	ex := &executor{
		session: s,
		ctx:     ctx,
		ectx:    s.engine.Context().Bind(ctx),
	}
	df, err := ex.run(plan)
	if err != nil {
		ex.cleanup(nil)
		return nil, err
	}
	ex.cleanup(df)
	return &Result{Frame: df, Plan: plan}, nil
}

// executor runs an optimized plan, tracking intermediate frames so their
// memory returns to the shared context budget. ctx is the query's
// lifecycle (cancellation, deadline); ectx is the engine execution
// context bound to it (and to the per-query memory budget, when the
// context carries one).
type executor struct {
	session *Session
	ctx     context.Context
	ectx    *exec.Context
	temps   []*exec.DataFrame
}

func (ex *executor) track(df *exec.DataFrame) *exec.DataFrame {
	ex.temps = append(ex.temps, df)
	return df
}

// cleanup releases every tracked frame except keep (the query result).
func (ex *executor) cleanup(keep *exec.DataFrame) {
	for _, df := range ex.temps {
		if df != keep {
			df.Release()
		}
	}
	ex.temps = nil
}

func (ex *executor) run(p Plan) (*exec.DataFrame, error) {
	// Every plan node re-checks the query lifecycle on entry, so a
	// cancel or deadline between operators aborts before the next
	// materialization rather than after it.
	if err := ex.ectx.Err(); err != nil {
		return nil, err
	}
	switch v := p.(type) {
	case *ScanPlan:
		return ex.runScan(v)
	case *ViewPlan:
		// Borrowed, never released here: the alias rebinds the cached
		// rows to this query's cancellation and budget (the frame was
		// built under the long-finished creating query's context).
		return v.View.Frame.Bound(ex.ectx), nil
	case *FilterPlan:
		child, err := ex.run(v.Child)
		if err != nil {
			return nil, err
		}
		schema := child.Schema()
		out, err := child.Filter(func(r exec.Row) (bool, error) {
			val, err := evalExpr(v.Cond, schema, r)
			if err != nil {
				return false, err
			}
			b, ok := val.(bool)
			if !ok {
				return false, fmt.Errorf("sql: WHERE clause is not boolean")
			}
			return b, nil
		})
		if err != nil {
			return nil, err
		}
		return ex.track(out), nil
	case *AggregatePlan:
		if df, ok, err := ex.columnarAgg(v); err != nil {
			return nil, err
		} else if ok {
			return df, nil
		}
		child, err := ex.run(v.Child)
		if err != nil {
			return nil, err
		}
		out, err := child.GroupBySized(v.Keys, v.Aggs, aggSizeHint(v.Child))
		if err != nil {
			return nil, err
		}
		return ex.track(out), nil
	case *SortPlan:
		if df, ok, err := ex.columnarSort(v); err != nil {
			return nil, err
		} else if ok {
			return df, nil
		}
		child, err := ex.run(v.Child)
		if err != nil {
			return nil, err
		}
		schema := child.Schema()
		var evalErr error
		out, err := child.SortBy(func(a, b exec.Row) bool {
			for _, k := range v.Keys {
				av, err1 := evalExpr(k.Expr, schema, a)
				bv, err2 := evalExpr(k.Expr, schema, b)
				if err1 != nil || err2 != nil {
					if evalErr == nil {
						evalErr = fmt.Errorf("sql: ORDER BY evaluation failed")
					}
					return false
				}
				c, ok := exec.Compare(av, bv)
				if !ok {
					continue
				}
				if c != 0 {
					if k.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if err != nil {
			return nil, err
		}
		if evalErr != nil {
			return nil, evalErr
		}
		return ex.track(out), nil
	case *LimitPlan:
		child, err := ex.run(v.Child)
		if err != nil {
			return nil, err
		}
		out, err := child.Limit(v.N)
		if err != nil {
			return nil, err
		}
		return ex.track(out), nil
	case *JoinPlan:
		left, err := ex.run(v.Left)
		if err != nil {
			return nil, err
		}
		right, err := ex.run(v.Right)
		if err != nil {
			return nil, err
		}
		jt := exec.InnerJoin
		if v.LeftOuter {
			jt = exec.LeftJoin
		}
		out, err := left.Join(right, []string{v.LeftCol}, []string{v.RightCol}, jt)
		if err != nil {
			return nil, err
		}
		return ex.track(out), nil
	case *ProjectPlan:
		return ex.runProject(v)
	default:
		return nil, fmt.Errorf("sql: cannot execute %T", p)
	}
}

// aggSizeHint estimates an aggregation input's cardinality from table
// statistics, so the hash-aggregation tables are sized up front instead
// of rehashing as groups accumulate. 0 (no hint) when the aggregate is
// not fed by a scan of a table with collected statistics.
func aggSizeHint(p Plan) int {
	const maxHint = 1 << 20 // cap what a stale RowCount can preallocate
	switch v := p.(type) {
	case *ScanPlan:
		if st := v.Table.Stats(); st != nil {
			n := st.RowCount
			if n > maxHint {
				n = maxHint
			}
			return int(n)
		}
	case *FilterPlan:
		return aggSizeHint(v.Child)
	case *ProjectPlan:
		return aggSizeHint(v.Child)
	case *LimitPlan:
		return aggSizeHint(v.Child)
	}
	return 0
}

// columnarScannable reports whether a scan can feed the vectorized
// operators directly: a plain range scan with no point lookup, no k-NN,
// no residual predicates and no pushed limit. Window and time bounds
// are fine — the batch scan applies them with the same semantics as the
// row path.
func columnarScannable(v *ScanPlan) bool {
	return v.FIDEq == nil && v.KNN == nil && len(v.Residual) == 0 && v.Limit <= 0
}

func scanIndexQuery(v *ScanPlan) index.Query {
	q := index.Query{Window: geom.WorldMBR}
	if v.Window != nil {
		q.Window = *v.Window
	}
	if v.TMin != nil || v.TMax != nil {
		q.HasTime = true
		q.TMin, q.TMax = timeBounds(v.TMin, v.TMax)
	}
	return q
}

// collectBatches runs the columnar scan and retains every batch,
// charging each to the query's memory budget. The returned release
// frees the charge; callers defer it past result materialization.
func (ex *executor) collectBatches(t *table.Table, v *ScanPlan, needed []bool) ([]*exec.ColumnBatch, func(), error) {
	var batches []*exec.ColumnBatch
	var reserved int64
	ectx := ex.ectx
	release := func() { ectx.Release(reserved) }
	var budgetErr error
	err := t.ScanBatches(ex.ctx, scanIndexQuery(v), needed, func(b *exec.ColumnBatch) bool {
		n := b.MemSize()
		if err := ectx.Reserve(n); err != nil {
			budgetErr = err
			return false
		}
		reserved += n
		batches = append(batches, b)
		return true
	})
	if budgetErr != nil {
		err = budgetErr
	}
	if err != nil {
		return nil, release, err
	}
	return batches, release, nil
}

// columnarAgg runs aggregate-over-scan on the vectorized path: the scan
// emits column batches and hash aggregation reads the typed vectors
// directly, so rows are never boxed between storage and the hash table.
// ok=false falls back to the row operators.
func (ex *executor) columnarAgg(v *AggregatePlan) (*exec.DataFrame, bool, error) {
	scan, isScan := v.Child.(*ScanPlan)
	if !isScan || !columnarScannable(scan) {
		return nil, false, nil
	}
	t, err := ex.session.engine.OpenTable(scan.Table.Desc.User, scan.Table.Desc.Name)
	if err != nil {
		return nil, false, err
	}
	full := t.Schema()
	needed := make([]bool, full.Len())
	keyIdx := make([]int, len(v.Keys))
	for i, k := range v.Keys {
		j := full.Index(k)
		if j < 0 {
			return nil, false, nil // row path reports the unknown column
		}
		keyIdx[i] = j
		needed[j] = true
	}
	aggIdx := make([]int, len(v.Aggs))
	for i, a := range v.Aggs {
		if a.Col == "*" || a.Col == "" {
			aggIdx[i] = -1
			continue
		}
		j := full.Index(a.Col)
		if j < 0 {
			return nil, false, nil
		}
		aggIdx[i] = j
		needed[j] = true
	}
	batches, release, err := ex.collectBatches(t, scan, needed)
	defer release()
	if err != nil {
		return nil, false, err
	}
	schema, rows, err := exec.AggregateBatches(full, batches, keyIdx, v.Aggs, aggIdx, aggSizeHint(v.Child))
	if err != nil {
		return nil, false, err
	}
	df, err := exec.NewDataFrame(ex.ectx, schema, rows)
	if err != nil {
		return nil, false, err
	}
	return ex.track(df), true, nil
}

// columnarSort runs sort-over-scan on the vectorized path: batches are
// sorted via the key's typed vector and rows materialize only after the
// sort. ok=false falls back when the key is not a bare column of the
// scan, the scan is not batch-eligible, or the key column holds NULLs
// (the row comparator treats NULL as tying with everything, the vector
// sort orders NULLs first — the rare NULL-key sort keeps the historic
// order).
func (ex *executor) columnarSort(v *SortPlan) (*exec.DataFrame, bool, error) {
	if len(v.Keys) != 1 {
		return nil, false, nil
	}
	ident, isIdent := v.Keys[0].Expr.(*Ident)
	if !isIdent {
		return nil, false, nil
	}
	scan, isScan := v.Child.(*ScanPlan)
	if !isScan || !columnarScannable(scan) {
		return nil, false, nil
	}
	outSchema := scan.Schema()
	if outSchema.Index(ident.Name) < 0 {
		return nil, false, nil
	}
	t, err := ex.session.engine.OpenTable(scan.Table.Desc.User, scan.Table.Desc.Name)
	if err != nil {
		return nil, false, err
	}
	full := t.Schema()
	col := full.Index(ident.Name)
	if col < 0 {
		return nil, false, nil
	}
	needed := make([]bool, full.Len())
	needed[col] = true
	var colIdx []int
	if scan.Cols != nil {
		colIdx = make([]int, len(scan.Cols))
		for i, c := range scan.Cols {
			j := full.Index(c)
			if j < 0 {
				return nil, false, nil
			}
			colIdx[i] = j
			needed[j] = true
		}
	} else {
		for i := range needed {
			needed[i] = true
		}
	}
	batches, release, err := ex.collectBatches(t, scan, needed)
	defer release()
	if err != nil {
		return nil, false, err
	}
	for _, b := range batches {
		if b.HasNulls(col) {
			return nil, false, nil
		}
	}
	rows := exec.SortBatches(batches, col, v.Keys[0].Desc)
	if colIdx != nil {
		for i, r := range rows {
			nr := make(exec.Row, len(colIdx))
			for k, j := range colIdx {
				nr[k] = r[j]
			}
			rows[i] = nr
		}
	}
	df, err := exec.NewDataFrame(ex.ectx, outSchema, rows)
	if err != nil {
		return nil, false, err
	}
	return ex.track(df), true, nil
}

func (ex *executor) runScan(v *ScanPlan) (*exec.DataFrame, error) {
	eng := ex.session.engine
	ectx := ex.ectx
	fullSchema := v.Table.Schema()
	var colIdx []int
	outSchema := fullSchema
	if v.Cols != nil {
		colIdx = make([]int, len(v.Cols))
		for i, c := range v.Cols {
			colIdx[i] = fullSchema.Index(c)
		}
		outSchema = v.Schema()
	}
	project := func(row exec.Row) exec.Row {
		if colIdx == nil {
			return row
		}
		nr := make(exec.Row, len(colIdx))
		for i, j := range colIdx {
			nr[i] = row[j]
		}
		return nr
	}
	residualOK := func(row exec.Row) (bool, error) {
		for _, e := range v.Residual {
			val, err := evalExpr(e, fullSchema, row)
			if err != nil {
				return false, err
			}
			b, ok := val.(bool)
			if !ok {
				return false, fmt.Errorf("sql: predicate %s is not boolean", exprString(e))
			}
			if !b {
				return false, nil
			}
		}
		return true, nil
	}

	if v.FIDEq != nil {
		// Attribute-index point lookup.
		t, err := eng.OpenTable(v.Table.Desc.User, v.Table.Desc.Name)
		if err != nil {
			return nil, err
		}
		var rows []exec.Row
		row, err := t.Get(v.FIDEq)
		if err != nil && !errors.Is(err, kv.ErrNotFound) {
			return nil, err
		}
		if err == nil {
			// Apply remaining pushed predicates to the single row.
			keep := true
			if v.Window != nil {
				gi := t.GeomIndex()
				if gi >= 0 {
					if g, ok := row[gi].(geom.Geometry); !ok || !geom.IntersectsMBR(g, *v.Window) {
						keep = false
					}
				}
			}
			if keep && (v.TMin != nil || v.TMax != nil) && t.TimeIndex() >= 0 {
				lo, hi := timeBounds(v.TMin, v.TMax)
				if ts, ok := row[t.TimeIndex()].(int64); !ok || ts < lo || ts > hi {
					keep = false
				}
			}
			if keep {
				ok, err := residualOK(row)
				if err != nil {
					return nil, err
				}
				keep = ok
			}
			if keep {
				rows = append(rows, project(row))
			}
		}
		df, err := exec.NewDataFrame(ectx, outSchema, rows)
		if err != nil {
			return nil, err
		}
		return ex.track(df), nil
	}

	if v.KNN != nil {
		opts := core.KNNOptions{}
		if v.Window != nil {
			opts.Root = *v.Window
		}
		if v.TMin != nil || v.TMax != nil {
			opts.HasTime = true
			opts.TMin, opts.TMax = timeBounds(v.TMin, v.TMax)
		}
		neighbors, err := eng.KNN(ex.ctx, v.Table.Desc.User, v.Table.Desc.Name, v.KNN.Point, v.KNN.K, opts)
		if err != nil {
			return nil, err
		}
		var rows []exec.Row
		for _, nb := range neighbors {
			ok, err := residualOK(nb.Row)
			if err != nil {
				return nil, err
			}
			if ok {
				rows = append(rows, project(nb.Row))
			}
		}
		df, err := exec.NewDataFrame(ectx, outSchema, rows)
		if err != nil {
			return nil, err
		}
		return ex.track(df), nil
	}

	q := scanIndexQuery(v)
	// Push the projection into the scan so untouched columns are never
	// decoded (or decompressed). Residual predicates evaluate against
	// the full schema, so every column they reference must be decoded
	// too, not just the projected ones.
	var scanCols []string
	if v.Cols != nil {
		set := make(map[string]bool, len(v.Cols))
		for _, c := range v.Cols {
			set[c] = true
		}
		for _, e := range v.Residual {
			collectIdents(e, set)
		}
		for _, f := range fullSchema.Fields {
			if set[f.Name] {
				scanCols = append(scanCols, f.Name)
			}
		}
	}
	gi := v.Table.GeomIndex()
	var rows []exec.Row
	var scanErr error
	// Rows accumulated before the frame exists are charged to the
	// query's memory budget incrementally, so an oversized result set
	// kills the query with exec.ErrMemoryBudget mid-scan instead of
	// OOMing the process at materialization time.
	var reserved int64
	defer func() { ectx.Release(reserved) }()
	err := eng.ScanProjected(ex.ctx, v.Table.Desc.User, v.Table.Desc.Name, q, scanCols, func(row exec.Row) bool {
		// Exact geometry refinement when a window was pushed.
		if v.Window != nil && gi >= 0 {
			if g, ok := row[gi].(geom.Geometry); ok && !geom.IntersectsMBR(g, *v.Window) {
				return true
			}
		}
		ok, err := residualOK(row)
		if err != nil {
			scanErr = err
			return false
		}
		if ok {
			pr := project(row)
			n := exec.RowSize(pr)
			if err := ectx.Reserve(n); err != nil {
				scanErr = err
				return false
			}
			reserved += n
			rows = append(rows, pr)
			// A pushed-down LIMIT stops the scan (cancelling region
			// workers) once enough surviving rows are in hand.
			if v.Limit > 0 && len(rows) >= v.Limit {
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	df, err := exec.NewDataFrame(ectx, outSchema, rows)
	if err != nil {
		return nil, err
	}
	return ex.track(df), nil
}

func timeBounds(tmin, tmax *int64) (int64, int64) {
	lo := int64(0)
	hi := int64(1) << 62
	if tmin != nil {
		lo = *tmin
	}
	if tmax != nil {
		hi = *tmax
	}
	return lo, hi
}

func (ex *executor) runProject(v *ProjectPlan) (*exec.DataFrame, error) {
	child, err := ex.run(v.Child)
	if err != nil {
		return nil, err
	}
	// Analysis operator special case.
	if len(v.Items) == 1 && !v.Items[0].Star {
		if call, ok := v.Items[0].Expr.(*FuncCall); ok && analysisFuncs[call.Name] {
			out, err := ex.runAnalysis(call, child, v.Schema())
			if err != nil {
				return nil, err
			}
			return ex.track(out), nil
		}
	}
	// Pure column projection.
	allIdents := true
	var names []string
	for _, it := range v.Items {
		id, ok := it.Expr.(*Ident)
		if !ok || it.Alias != "" || id.Name == "item" {
			allIdents = false
			break
		}
		names = append(names, id.Name)
	}
	if allIdents {
		if sameNames(names, child.Schema().Names()) {
			return child, nil
		}
		out, err := child.Select(names...)
		if err != nil {
			return nil, err
		}
		return ex.track(out), nil
	}
	// General expression projection (1-1 operations via Map).
	schema := child.Schema()
	out, err := child.Map(v.Schema(), func(r exec.Row) (exec.Row, error) {
		nr := make(exec.Row, len(v.Items))
		for i, it := range v.Items {
			val, err := evalExpr(it.Expr, schema, r)
			if err != nil {
				return nil, err
			}
			nr[i] = val
		}
		return nr, nil
	})
	if err != nil {
		return nil, err
	}
	return ex.track(out), nil
}

func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runAnalysis executes the 1-N and N-M operators.
func (ex *executor) runAnalysis(call *FuncCall, child *exec.DataFrame, outSchema *exec.Schema) (*exec.DataFrame, error) {
	argF := func(i int, def float64) (float64, error) {
		if len(call.Args) <= i {
			return def, nil
		}
		v, err := evalExpr(call.Args[i], nil, nil)
		if err != nil {
			return 0, err
		}
		return toFloat(v)
	}
	switch call.Name {
	case "st_trajnoisefilter":
		maxSpeed, err := argF(1, 50)
		if err != nil {
			return nil, err
		}
		return child.FlatMap(outSchema, func(r exec.Row) ([]exec.Row, error) {
			traj, err := table.TrajectoryFromRow(r)
			if err != nil {
				return nil, err
			}
			traj.Points = analysis.NoiseFilter(traj.Points, analysis.NoiseFilterOptions{MaxSpeedMPS: maxSpeed})
			if len(traj.Points) < 2 {
				return nil, nil
			}
			row, err := traj.Row()
			if err != nil {
				return nil, err
			}
			return []exec.Row{row}, nil
		})
	case "st_trajsegmentation":
		gapMin, err := argF(1, 10)
		if err != nil {
			return nil, err
		}
		return child.FlatMap(outSchema, func(r exec.Row) ([]exec.Row, error) {
			traj, err := table.TrajectoryFromRow(r)
			if err != nil {
				return nil, err
			}
			segs := analysis.Segmentation(traj.Points, analysis.SegmentationOptions{
				MaxGapMS: int64(gapMin * 60 * 1000),
			})
			var out []exec.Row
			for i, seg := range segs {
				sub := &table.Trajectory{ID: fmt.Sprintf("%s#%d", traj.ID, i), Points: seg}
				row, err := sub.Row()
				if err != nil {
					return nil, err
				}
				out = append(out, row)
			}
			return out, nil
		})
	case "st_trajstaypoint":
		distM, err := argF(1, 200)
		if err != nil {
			return nil, err
		}
		durMin, err := argF(2, 20)
		if err != nil {
			return nil, err
		}
		return child.FlatMap(outSchema, func(r exec.Row) ([]exec.Row, error) {
			traj, err := table.TrajectoryFromRow(r)
			if err != nil {
				return nil, err
			}
			sps := analysis.StayPoints(traj.Points, analysis.StayPointOptions{
				MaxDistM: distM, MinDurationMS: int64(durMin * 60 * 1000),
			})
			var out []exec.Row
			for _, sp := range sps {
				out = append(out, exec.Row{traj.ID, sp.Center, sp.ArriveMS, sp.DepartMS, int64(sp.PointCount)})
			}
			return out, nil
		})
	case "st_dbscan":
		if len(call.Args) != 3 {
			return nil, fmt.Errorf("sql: st_DBSCAN(geom, minPts, radius)")
		}
		id, ok := call.Args[0].(*Ident)
		if !ok {
			return nil, fmt.Errorf("sql: st_DBSCAN first argument must be a geometry column")
		}
		gi := child.Schema().Index(id.Name)
		if gi < 0 {
			return nil, fmt.Errorf("sql: unknown column %q", id.Name)
		}
		minPtsF, err := argF(1, 5)
		if err != nil {
			return nil, err
		}
		radius, err := argF(2, 0.01)
		if err != nil {
			return nil, err
		}
		rows := child.Collect()
		pts := make([]geom.Point, 0, len(rows))
		for _, r := range rows {
			if g, ok := r[gi].(geom.Geometry); ok {
				pts = append(pts, g.MBR().Center())
			}
		}
		labels := analysis.DBSCAN(pts, int(minPtsF), radius)
		out := make([]exec.Row, len(pts))
		for i := range pts {
			out[i] = exec.Row{int64(labels[i]), pts[i]}
		}
		return exec.NewDataFrame(ex.ectx, outSchema, out)
	default:
		return nil, fmt.Errorf("sql: unknown analysis function %q", call.Name)
	}
}

// --- LOAD ---

func (s *Session) execLoad(ctx context.Context, st *LoadStmt) (*Result, error) {
	switch st.SrcKind {
	case "csv":
		return s.loadCSV(st)
	case "geojson":
		return s.loadGeoJSON(st)
	case "table", "hive":
		// Hive is simulated by loading from another JUST table.
		return s.loadTable(ctx, st)
	default:
		return nil, fmt.Errorf("sql: unsupported LOAD source %q", st.SrcKind)
	}
}

func (s *Session) loadTable(ctx context.Context, st *LoadStmt) (*Result, error) {
	src, err := s.engine.OpenTable(s.user, strings.TrimPrefix(st.Src, "default."))
	if err != nil {
		return nil, err
	}
	dst, err := s.engine.OpenTable(s.user, st.Dst)
	if err != nil {
		return nil, err
	}
	mapping, filter, limit, err := compileLoadConfig(st, src.Schema())
	if err != nil {
		return nil, err
	}
	var rows []exec.Row
	srcSchema := src.Schema()
	var ferr error
	err = src.FullScan(ctx, func(r exec.Row) bool {
		if limit > 0 && len(rows) >= limit {
			return false
		}
		if filter != nil {
			keep, err := evalExpr(filter, srcSchema, r)
			if err != nil {
				ferr = err
				return false
			}
			if b, ok := keep.(bool); !ok || !b {
				return true
			}
		}
		row, err := applyMapping(mapping, dst.Desc.Columns, srcSchema, r)
		if err != nil {
			ferr = err
			return false
		}
		rows = append(rows, row)
		return true
	})
	if err != nil {
		return nil, err
	}
	if ferr != nil {
		return nil, ferr
	}
	if err := s.engine.BulkInsertContext(ctx, dst.Desc.User, dst.Desc.Name, rows); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("loaded %d rows into %s", len(rows), st.Dst)}, nil
}

// compileLoadConfig parses the CONFIG expressions and FILTER clause.
func compileLoadConfig(st *LoadStmt, srcSchema *exec.Schema) (map[string]Expr, Expr, int, error) {
	mapping := map[string]Expr{}
	for dstCol, exprSrc := range st.Config {
		e, err := ParseExpr(exprSrc)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("sql: CONFIG %q: %w", dstCol, err)
		}
		mapping[dstCol] = e
	}
	var filter Expr
	limit := 0
	if st.Filter != "" {
		e, n, err := ParseFilter(st.Filter)
		if err != nil {
			return nil, nil, 0, err
		}
		filter, limit = e, n
	}
	return mapping, filter, limit, nil
}

func applyMapping(mapping map[string]Expr, cols []table.Column, srcSchema *exec.Schema, src exec.Row) (exec.Row, error) {
	row := make(exec.Row, len(cols))
	for i, col := range cols {
		e, ok := mapping[col.Name]
		if !ok {
			// Default: same-named source column, else null.
			if j := srcSchema.Index(col.Name); j >= 0 {
				cv, err := coerceValue(col, src[j])
				if err != nil {
					return nil, err
				}
				row[i] = cv
			}
			continue
		}
		v, err := evalExpr(e, srcSchema, src)
		if err != nil {
			return nil, err
		}
		cv, err := coerceValue(col, v)
		if err != nil {
			return nil, err
		}
		row[i] = cv
	}
	return row, nil
}

// ParseExpr parses a standalone JustQL expression (used by LOAD CONFIG).
func ParseExpr(src string) (Expr, error) {
	l, err := newLexer(src)
	if err != nil {
		return nil, err
	}
	p := &parser{l: l}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if t := p.l.peek(); t.kind != tokEOF {
		return nil, &SyntaxError{t.pos, fmt.Sprintf("trailing input %q", t.text)}
	}
	return e, nil
}

// ParseFilter parses a LOAD FILTER string: an expression with an
// optional trailing `limit N`.
func ParseFilter(src string) (Expr, int, error) {
	l, err := newLexer(src)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{l: l}
	e, err := p.parseExpr()
	if err != nil {
		return nil, 0, err
	}
	limit := 0
	if p.l.matchKeyword("limit") {
		t := p.l.peek()
		if t.kind != tokNumber {
			return nil, 0, &SyntaxError{t.pos, "limit expects a number"}
		}
		p.l.next()
		fmt.Sscanf(t.text, "%d", &limit)
	}
	if t := p.l.peek(); t.kind != tokEOF {
		return nil, 0, &SyntaxError{t.pos, fmt.Sprintf("trailing input %q", t.text)}
	}
	return e, limit, nil
}
