package sql

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"just/internal/analysis"
	"just/internal/exec"
	"just/internal/geom"
)

// scalarFunc is one preset function. Values flow as exec row values;
// geometry helpers additionally pass geom.MBR internally.
type scalarFunc func(args []any) (any, error)

// scalarFuncs is the preset function registry (the paper's out-of-the-box
// operations; names are case-insensitive and stored lower-cased).
var scalarFuncs = map[string]scalarFunc{
	"st_makembr": func(args []any) (any, error) {
		v, err := floats(args, 4)
		if err != nil {
			return nil, fmt.Errorf("st_makeMBR: %w", err)
		}
		return geom.NewMBR(v[0], v[1], v[2], v[3]), nil
	},
	"st_makepoint": func(args []any) (any, error) {
		v, err := floats(args, 2)
		if err != nil {
			return nil, fmt.Errorf("st_makePoint: %w", err)
		}
		return geom.Point{Lng: v[0], Lat: v[1]}, nil
	},
	"st_within": func(args []any) (any, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("st_within: want 2 args")
		}
		return evalWithin(args[0], args[1])
	},
	"st_intersects": func(args []any) (any, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("st_intersects: want 2 args")
		}
		return evalWithin(args[0], args[1])
	},
	"st_distance": func(args []any) (any, error) {
		a, b, err := twoGeoms(args)
		if err != nil {
			return nil, fmt.Errorf("st_distance: %w", err)
		}
		return geom.EuclideanDistance(a.MBR().Center(), b.MBR().Center()), nil
	},
	"st_distancemeters": func(args []any) (any, error) {
		a, b, err := twoGeoms(args)
		if err != nil {
			return nil, fmt.Errorf("st_distanceMeters: %w", err)
		}
		return geom.HaversineMeters(a.MBR().Center(), b.MBR().Center()), nil
	},
	"st_x": func(args []any) (any, error) {
		p, err := onePoint(args)
		if err != nil {
			return nil, fmt.Errorf("st_x: %w", err)
		}
		return p.Lng, nil
	},
	"st_y": func(args []any) (any, error) {
		p, err := onePoint(args)
		if err != nil {
			return nil, fmt.Errorf("st_y: %w", err)
		}
		return p.Lat, nil
	},
	"st_aswkt": func(args []any) (any, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("st_asWKT: want 1 arg")
		}
		g, ok := args[0].(geom.Geometry)
		if !ok {
			return nil, fmt.Errorf("st_asWKT: not a geometry: %T", args[0])
		}
		return g.WKT(), nil
	},
	"st_geomfromwkt": func(args []any) (any, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("st_geomFromWKT: want 1 arg")
		}
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("st_geomFromWKT: not a string")
		}
		return geom.ParseWKT(s)
	},
	"st_wgs84togcj02": func(args []any) (any, error) {
		return coordTransform(args, analysis.WGS84ToGCJ02)
	},
	"st_gcj02towgs84": func(args []any) (any, error) {
		return coordTransform(args, analysis.GCJ02ToWGS84)
	},
	"st_gcj02tobd09": func(args []any) (any, error) {
		return coordTransform(args, analysis.GCJ02ToBD09)
	},
	"st_bd09togcj02": func(args []any) (any, error) {
		return coordTransform(args, analysis.BD09ToGCJ02)
	},
	"to_time": func(args []any) (any, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("to_time: want 1 arg")
		}
		return toTimeMS(args[0])
	},
	"long_to_date_ms": func(args []any) (any, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("long_to_date_ms: want 1 arg")
		}
		f, err := toFloat(args[0])
		if err != nil {
			return nil, err
		}
		return int64(f), nil
	},
	"lng_lat_to_point": func(args []any) (any, error) {
		v, err := floats(args, 2)
		if err != nil {
			return nil, fmt.Errorf("lng_lat_to_point: %w", err)
		}
		return geom.Point{Lng: v[0], Lat: v[1]}, nil
	},
	"to_double": func(args []any) (any, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("to_double: want 1 arg")
		}
		return toFloat(args[0])
	},
	"to_long": func(args []any) (any, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("to_long: want 1 arg")
		}
		f, err := toFloat(args[0])
		if err != nil {
			return nil, err
		}
		return int64(f), nil
	},
	"abs": func(args []any) (any, error) {
		v, err := floats(args, 1)
		if err != nil {
			return nil, err
		}
		return math.Abs(v[0]), nil
	},
	"floor": func(args []any) (any, error) {
		v, err := floats(args, 1)
		if err != nil {
			return nil, err
		}
		return math.Floor(v[0]), nil
	},
	"ceil": func(args []any) (any, error) {
		v, err := floats(args, 1)
		if err != nil {
			return nil, err
		}
		return math.Ceil(v[0]), nil
	},
	"sqrt": func(args []any) (any, error) {
		v, err := floats(args, 1)
		if err != nil {
			return nil, err
		}
		return math.Sqrt(v[0]), nil
	},
	"st_geohash": func(args []any) (any, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("st_geohash: want (point, precision)")
		}
		p, ok := args[0].(geom.Point)
		if !ok {
			return nil, fmt.Errorf("st_geohash: not a point")
		}
		n, err := toFloat(args[1])
		if err != nil {
			return nil, err
		}
		return geohash(p, int(n)), nil
	},
}

func coordTransform(args []any, fn func(lng, lat float64) (float64, float64)) (any, error) {
	switch len(args) {
	case 1:
		p, ok := args[0].(geom.Point)
		if !ok {
			return nil, fmt.Errorf("coordinate transform: not a point: %T", args[0])
		}
		lng, lat := fn(p.Lng, p.Lat)
		return geom.Point{Lng: lng, Lat: lat}, nil
	case 2:
		v, err := floats(args, 2)
		if err != nil {
			return nil, err
		}
		lng, lat := fn(v[0], v[1])
		return geom.Point{Lng: lng, Lat: lat}, nil
	default:
		return nil, fmt.Errorf("coordinate transform: want (point) or (lng, lat)")
	}
}

// evalWithin implements the WITHIN operator / st_within: geometry against
// an MBR (or another geometry's MBR).
func evalWithin(g, area any) (bool, error) {
	gg, ok := g.(geom.Geometry)
	if !ok {
		return false, fmt.Errorf("WITHIN: left side is %T, not a geometry", g)
	}
	switch a := area.(type) {
	case geom.MBR:
		return geom.IntersectsMBR(gg, a), nil
	case geom.Geometry:
		return geom.IntersectsMBR(gg, a.MBR()), nil
	default:
		return false, fmt.Errorf("WITHIN: right side is %T", area)
	}
}

func floats(args []any, n int) ([]float64, error) {
	if len(args) != n {
		return nil, fmt.Errorf("want %d numeric args, got %d", n, len(args))
	}
	out := make([]float64, n)
	for i, a := range args {
		f, err := toFloat(a)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

func toFloat(v any) (float64, error) {
	switch x := v.(type) {
	case int64:
		return float64(x), nil
	case float64:
		return x, nil
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		if err != nil {
			return 0, fmt.Errorf("not numeric: %q", x)
		}
		return f, nil
	default:
		return 0, fmt.Errorf("not numeric: %T", v)
	}
}

func twoGeoms(args []any) (geom.Geometry, geom.Geometry, error) {
	if len(args) != 2 {
		return nil, nil, fmt.Errorf("want 2 geometries")
	}
	a, ok1 := args[0].(geom.Geometry)
	b, ok2 := args[1].(geom.Geometry)
	if !ok1 || !ok2 {
		return nil, nil, fmt.Errorf("want 2 geometries, got %T, %T", args[0], args[1])
	}
	return a, b, nil
}

func onePoint(args []any) (geom.Point, error) {
	if len(args) != 1 {
		return geom.Point{}, fmt.Errorf("want 1 point")
	}
	p, ok := args[0].(geom.Point)
	if !ok {
		return geom.Point{}, fmt.Errorf("not a point: %T", args[0])
	}
	return p, nil
}

// timeLayouts are the accepted time literal formats.
var timeLayouts = []string{
	"2006-01-02T15:04:05Z07:00",
	"2006-01-02T15:04:05",
	"2006-01-02 15:04:05",
	"2006-01-02",
}

// toTimeMS converts a value to Unix milliseconds: int64 passes through,
// strings are parsed with the accepted layouts (UTC).
func toTimeMS(v any) (int64, error) {
	switch x := v.(type) {
	case int64:
		return x, nil
	case float64:
		return int64(x), nil
	case string:
		for _, layout := range timeLayouts {
			if t, err := time.ParseInLocation(layout, x, time.UTC); err == nil {
				return t.UnixMilli(), nil
			}
		}
		return 0, fmt.Errorf("sql: unparsable time %q", x)
	default:
		return 0, fmt.Errorf("sql: not a time: %T", v)
	}
}

// geohash encodes a point with the standard base-32 geohash, used by the
// urban-block example (the paper's application partitions space with
// 7-character geohashes).
func geohash(p geom.Point, precision int) string {
	if precision <= 0 {
		precision = 7
	}
	const base32 = "0123456789bcdefghjkmnpqrstuvwxyz"
	latMin, latMax := -90.0, 90.0
	lngMin, lngMax := -180.0, 180.0
	var sb strings.Builder
	bit, ch := 0, 0
	even := true
	for sb.Len() < precision {
		if even {
			mid := (lngMin + lngMax) / 2
			if p.Lng >= mid {
				ch |= 1 << (4 - bit)
				lngMin = mid
			} else {
				lngMax = mid
			}
		} else {
			mid := (latMin + latMax) / 2
			if p.Lat >= mid {
				ch |= 1 << (4 - bit)
				latMin = mid
			} else {
				latMax = mid
			}
		}
		even = !even
		if bit < 4 {
			bit++
		} else {
			sb.WriteByte(base32[ch])
			bit, ch = 0, 0
		}
	}
	return sb.String()
}

// evalExpr evaluates e against a row (schema resolves identifiers); row
// may be nil for constant expressions.
func evalExpr(e Expr, schema *exec.Schema, row exec.Row) (any, error) {
	switch v := e.(type) {
	case *Literal:
		return v.Val, nil
	case *Ident:
		if schema == nil || row == nil {
			return nil, fmt.Errorf("sql: column %q in constant context", v.Name)
		}
		i := schema.Index(v.Name)
		if i < 0 {
			return nil, fmt.Errorf("sql: unknown column %q", v.Name)
		}
		return row[i], nil
	case *UnaryExpr:
		x, err := evalExpr(v.X, schema, row)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case "NOT":
			b, ok := x.(bool)
			if !ok {
				return nil, fmt.Errorf("sql: NOT of non-boolean %T", x)
			}
			return !b, nil
		case "-":
			switch n := x.(type) {
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			}
			return nil, fmt.Errorf("sql: negation of %T", x)
		}
		return nil, fmt.Errorf("sql: unknown unary op %q", v.Op)
	case *BinaryExpr:
		return evalBinary(v, schema, row)
	case *BetweenExpr:
		x, err := evalExpr(v.X, schema, row)
		if err != nil {
			return nil, err
		}
		lo, err := evalExpr(v.Lo, schema, row)
		if err != nil {
			return nil, err
		}
		hi, err := evalExpr(v.Hi, schema, row)
		if err != nil {
			return nil, err
		}
		// Time-typed comparisons accept string literals.
		if _, isInt := x.(int64); isInt {
			if s, isStr := lo.(string); isStr {
				if ms, err := toTimeMS(s); err == nil {
					lo = ms
				}
			}
			if s, isStr := hi.(string); isStr {
				if ms, err := toTimeMS(s); err == nil {
					hi = ms
				}
			}
		}
		c1, ok1 := exec.Compare(x, lo)
		c2, ok2 := exec.Compare(x, hi)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("sql: BETWEEN on incomparable types")
		}
		return c1 >= 0 && c2 <= 0, nil
	case *FuncCall:
		fn, ok := scalarFuncs[v.Name]
		if !ok {
			return nil, fmt.Errorf("sql: unknown function %q", v.Name)
		}
		args := make([]any, len(v.Args))
		for i, a := range v.Args {
			x, err := evalExpr(a, schema, row)
			if err != nil {
				return nil, err
			}
			args[i] = x
		}
		return fn(args)
	case *InExpr:
		return nil, fmt.Errorf("sql: IN %s is only valid as a k-NN predicate", v.Fn.Name)
	default:
		return nil, fmt.Errorf("sql: cannot evaluate %T", e)
	}
}

func evalBinary(v *BinaryExpr, schema *exec.Schema, row exec.Row) (any, error) {
	switch v.Op {
	case "AND", "OR":
		l, err := evalExpr(v.L, schema, row)
		if err != nil {
			return nil, err
		}
		lb, ok := l.(bool)
		if !ok {
			return nil, fmt.Errorf("sql: %s of non-boolean %T", v.Op, l)
		}
		// Short-circuit.
		if v.Op == "AND" && !lb {
			return false, nil
		}
		if v.Op == "OR" && lb {
			return true, nil
		}
		r, err := evalExpr(v.R, schema, row)
		if err != nil {
			return nil, err
		}
		rb, ok := r.(bool)
		if !ok {
			return nil, fmt.Errorf("sql: %s of non-boolean %T", v.Op, r)
		}
		return rb, nil
	}
	l, err := evalExpr(v.L, schema, row)
	if err != nil {
		return nil, err
	}
	r, err := evalExpr(v.R, schema, row)
	if err != nil {
		return nil, err
	}
	switch v.Op {
	case "WITHIN":
		return evalWithin(l, r)
	case "=", "!=", "<", "<=", ">", ">=":
		// Time columns compare against string literals.
		if _, isInt := l.(int64); isInt {
			if s, isStr := r.(string); isStr {
				if ms, err := toTimeMS(s); err == nil {
					r = ms
				}
			}
		}
		c, ok := exec.Compare(l, r)
		if !ok {
			eq := fmt.Sprint(l) == fmt.Sprint(r)
			switch v.Op {
			case "=":
				return eq, nil
			case "!=":
				return !eq, nil
			}
			return nil, fmt.Errorf("sql: cannot compare %T with %T", l, r)
		}
		switch v.Op {
		case "=":
			return c == 0, nil
		case "!=":
			return c != 0, nil
		case "<":
			return c < 0, nil
		case "<=":
			return c <= 0, nil
		case ">":
			return c > 0, nil
		case ">=":
			return c >= 0, nil
		}
	case "+", "-", "*", "/":
		return arith(v.Op, l, r)
	}
	return nil, fmt.Errorf("sql: unknown operator %q", v.Op)
}

func arith(op string, l, r any) (any, error) {
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	if lInt && rInt {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			if ri == 0 {
				return nil, fmt.Errorf("sql: division by zero")
			}
			return li / ri, nil
		}
	}
	lf, err1 := toFloat(l)
	rf, err2 := toFloat(r)
	if err1 != nil || err2 != nil {
		return nil, fmt.Errorf("sql: arithmetic on non-numeric values %T, %T", l, r)
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, fmt.Errorf("sql: division by zero")
		}
		return lf / rf, nil
	}
	return nil, fmt.Errorf("sql: unknown arithmetic op %q", op)
}
