package sql

import (
	"encoding/json"
	"fmt"
	"os"

	"just/internal/exec"
	"just/internal/geom"
)

// loadGeoJSON implements `LOAD geojson:<path> TO geomesa:<table> ...`:
// it reads a FeatureCollection, exposes each feature's properties as
// source columns plus a `geometry` column, and applies the same CONFIG
// mapping and FILTER as the CSV loader. (The paper's data source layer
// lists CSV/GPX/KML/GeoJSON files; GeoJSON is the richest of those.)
func (s *Session) loadGeoJSON(st *LoadStmt) (*Result, error) {
	data, err := os.ReadFile(st.Src)
	if err != nil {
		return nil, fmt.Errorf("sql: LOAD geojson: %w", err)
	}
	var fc geoJSONCollection
	if err := json.Unmarshal(data, &fc); err != nil {
		return nil, fmt.Errorf("sql: LOAD geojson: %w", err)
	}
	if fc.Type != "FeatureCollection" {
		return nil, fmt.Errorf("sql: LOAD geojson: not a FeatureCollection (type %q)", fc.Type)
	}
	// Source schema: union of property names (strings sorted for
	// determinism) plus the geometry pseudo-column.
	propSet := map[string]bool{}
	for _, f := range fc.Features {
		for k := range f.Properties {
			propSet[k] = true
		}
	}
	var propNames []string
	for k := range propSet {
		propNames = append(propNames, k)
	}
	sortStrings(propNames)
	fields := make([]exec.Field, 0, len(propNames)+1)
	for _, n := range propNames {
		fields = append(fields, exec.Field{Name: n, Type: exec.TypeString})
	}
	fields = append(fields, exec.Field{Name: "geometry", Type: exec.TypeGeometry})
	srcSchema := exec.NewSchema(fields...)

	dst, err := s.engine.OpenTable(s.user, st.Dst)
	if err != nil {
		return nil, err
	}
	mapping, filter, limit, err := compileLoadConfig(st, srcSchema)
	if err != nil {
		return nil, err
	}

	var rows []exec.Row
	for _, f := range fc.Features {
		if limit > 0 && len(rows) >= limit {
			break
		}
		g, err := f.Geometry.toGeom()
		if err != nil {
			return nil, fmt.Errorf("sql: LOAD geojson: %w", err)
		}
		src := make(exec.Row, len(fields))
		for i, n := range propNames {
			if v, ok := f.Properties[n]; ok {
				src[i] = jsonValue(v)
			}
		}
		src[len(fields)-1] = g
		if filter != nil {
			keep, err := evalExpr(filter, srcSchema, src)
			if err != nil {
				return nil, err
			}
			if b, ok := keep.(bool); !ok || !b {
				continue
			}
		}
		row, err := applyMapping(mapping, dst.Desc.Columns, srcSchema, src)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	if err := s.engine.BulkInsert(dst.Desc.User, dst.Desc.Name, rows); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("loaded %d features from %s into %s", len(rows), st.Src, st.Dst)}, nil
}

type geoJSONCollection struct {
	Type     string           `json:"type"`
	Features []geoJSONFeature `json:"features"`
}

type geoJSONFeature struct {
	Type       string          `json:"type"`
	Properties map[string]any  `json:"properties"`
	Geometry   geoJSONGeometry `json:"geometry"`
}

type geoJSONGeometry struct {
	Type        string          `json:"type"`
	Coordinates json.RawMessage `json:"coordinates"`
}

func (g geoJSONGeometry) toGeom() (geom.Geometry, error) {
	switch g.Type {
	case "Point":
		var c [2]float64
		if err := json.Unmarshal(g.Coordinates, &c); err != nil {
			return nil, err
		}
		return geom.Point{Lng: c[0], Lat: c[1]}, nil
	case "LineString":
		var cs [][2]float64
		if err := json.Unmarshal(g.Coordinates, &cs); err != nil {
			return nil, err
		}
		pts := make([]geom.Point, len(cs))
		for i, c := range cs {
			pts[i] = geom.Point{Lng: c[0], Lat: c[1]}
		}
		return &geom.LineString{Points: pts}, nil
	case "Polygon":
		var rings [][][2]float64
		if err := json.Unmarshal(g.Coordinates, &rings); err != nil {
			return nil, err
		}
		if len(rings) == 0 {
			return nil, fmt.Errorf("empty polygon")
		}
		conv := func(ring [][2]float64) []geom.Point {
			pts := make([]geom.Point, 0, len(ring))
			for _, c := range ring {
				pts = append(pts, geom.Point{Lng: c[0], Lat: c[1]})
			}
			// GeoJSON rings repeat the first point; drop the closure.
			if len(pts) > 1 && pts[0] == pts[len(pts)-1] {
				pts = pts[:len(pts)-1]
			}
			return pts
		}
		p := &geom.Polygon{Outer: conv(rings[0])}
		for _, h := range rings[1:] {
			p.Holes = append(p.Holes, conv(h))
		}
		return p, nil
	case "MultiPoint":
		var cs [][2]float64
		if err := json.Unmarshal(g.Coordinates, &cs); err != nil {
			return nil, err
		}
		pts := make([]geom.Point, len(cs))
		for i, c := range cs {
			pts[i] = geom.Point{Lng: c[0], Lat: c[1]}
		}
		return &geom.MultiPoint{Points: pts}, nil
	default:
		return nil, fmt.Errorf("unsupported GeoJSON geometry %q", g.Type)
	}
}

// jsonValue converts a decoded JSON property to engine conventions.
func jsonValue(v any) any {
	switch x := v.(type) {
	case float64:
		if x == float64(int64(x)) {
			return int64(x)
		}
		return x
	case string, bool, nil:
		return x
	default:
		return fmt.Sprintf("%v", x)
	}
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
