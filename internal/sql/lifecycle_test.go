package sql

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"just/internal/exec"
)

// lifecycleSession builds a session over a table with n point rows.
func lifecycleSession(t *testing.T, n int) *Session {
	t.Helper()
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE pts (fid integer:primary key, geom point, name string)`)
	for i := 0; i < n; i += 500 {
		var b strings.Builder
		for j := i; j < i+500 && j < n; j++ {
			fmt.Fprintf(&b, "INSERT INTO pts VALUES (%d, st_makePoint(%f, %f), 'n-%d');",
				j, 116.0+float64(j%1000)*0.0005, 39.0+float64(j/1000)*0.0005, j)
		}
		for _, stmt := range strings.Split(b.String(), ";") {
			if strings.TrimSpace(stmt) == "" {
				continue
			}
			mustExec(t, s, stmt)
		}
	}
	return s
}

func TestExecuteContextPreCanceled(t *testing.T) {
	s := lifecycleSession(t, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.ExecuteContext(ctx, `SELECT fid FROM pts`)
	if !errors.Is(err, exec.ErrQueryCanceled) {
		t.Fatalf("err = %v, want ErrQueryCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, must unwrap to context.Canceled", err)
	}
}

func TestExecuteContextDeadlineTyped(t *testing.T) {
	s := lifecycleSession(t, 2000)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err := s.ExecuteContext(ctx, `SELECT fid FROM pts WHERE st_distance(geom, st_makePoint(0, 0)) < 1000`)
	if !errors.Is(err, exec.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, must unwrap to context.DeadlineExceeded", err)
	}
}

// TestQueryMemBudgetTyped attaches a tiny per-query budget and expects
// the typed budget error instead of an engine-wide OOM.
func TestQueryMemBudgetTyped(t *testing.T) {
	s := lifecycleSession(t, 2000)
	ctx := exec.WithQuery(context.Background(), exec.NewQuery(1024))
	_, err := s.ExecuteContext(ctx, `SELECT fid, geom, name FROM pts`)
	if !errors.Is(err, exec.ErrMemoryBudget) {
		t.Fatalf("err = %v, want ErrMemoryBudget", err)
	}
	// A budget large enough for the result succeeds and reports usage.
	q := exec.NewQuery(64 << 20)
	res, err := s.ExecuteContext(exec.WithQuery(context.Background(), q), `SELECT fid FROM pts LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	res.Frame.Release()
	if q.MemPeak() == 0 {
		t.Fatal("query peak memory not tracked")
	}
}

// TestLimitPushdownPlan asserts LIMIT reaches the scan node so early
// termination can cancel region workers.
func TestLimitPushdownPlan(t *testing.T) {
	s := lifecycleSession(t, 10)
	res := mustExec(t, s, `EXPLAIN SELECT fid FROM pts LIMIT 5`)
	if !strings.Contains(res.Message, "limit=5") {
		t.Fatalf("plan missing pushed limit:\n%s", res.Message)
	}
	// LIMIT must not push through an aggregate.
	res = mustExec(t, s, `EXPLAIN SELECT count(fid) FROM pts LIMIT 5`)
	if strings.Contains(res.Message, "limit=5") {
		t.Fatalf("limit wrongly pushed through aggregate:\n%s", res.Message)
	}
}

// TestLimitStopsScanEarly proves a pushed-down LIMIT terminates the
// storage scan instead of materializing the whole table.
func TestLimitStopsScanEarly(t *testing.T) {
	s := lifecycleSession(t, 8000)
	eng := s.engine
	before := eng.Cluster().Metrics().ScanPairs
	res := mustExec(t, s, `SELECT fid FROM pts LIMIT 5`)
	if n := len(res.Frame.Collect()); n != 5 {
		t.Fatalf("rows = %d, want 5", n)
	}
	res.Frame.Release()
	scanned := eng.Cluster().Metrics().ScanPairs - before
	if scanned >= 8000 {
		t.Fatalf("LIMIT 5 scanned %d pairs — no early termination", scanned)
	}
	// Correctness unchanged: the same query without LIMIT sees all rows.
	res = mustExec(t, s, `SELECT fid FROM pts`)
	if n := len(res.Frame.Collect()); n != 8000 {
		t.Fatalf("full scan = %d rows, want 8000", n)
	}
	res.Frame.Release()
}

// TestLimitQueryReleasesGoroutines runs early-terminating LIMIT queries
// in a loop and checks the scan pipeline leaves no goroutines behind.
func TestLimitQueryReleasesGoroutines(t *testing.T) {
	s := lifecycleSession(t, 8000)
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		res := mustExec(t, s, `SELECT fid FROM pts LIMIT 3`)
		res.Frame.Release()
	}
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: base=%d now=%d", base, runtime.NumGoroutine())
}

// TestViewSurvivesCreatorCancel pins the rebinding contract: a frame
// cached by CREATE VIEW under one query's context must stay readable
// after that query's context is canceled.
func TestViewSurvivesCreatorCancel(t *testing.T) {
	s := lifecycleSession(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := s.ExecuteContext(ctx, `CREATE VIEW v AS SELECT fid FROM pts`); err != nil {
		t.Fatal(err)
	}
	cancel() // creator's lifecycle ends
	res, err := s.Execute(`SELECT fid FROM v`)
	if err != nil {
		t.Fatalf("view query after creator cancel: %v", err)
	}
	if n := len(res.Frame.Collect()); n != 100 {
		t.Fatalf("view rows = %d, want 100", n)
	}
	res.Frame.Release()
}
