package sql

import (
	"sort"

	"just/internal/exec"
	"just/internal/geom"
)

// Optimize applies the paper's rule-based rewrites (Section VI, SQL
// Optimize): constant folding, predicate pushdown, and projection
// pushdown, transforming the analyzed plan into the executed one
// (Fig. 8a → Fig. 8b), then orders each scan's residual predicates by
// estimated selectivity and cost.
func Optimize(p Plan) Plan {
	p = foldPlanConstants(p)
	p = pushDownFilters(p)
	p = pruneColumns(p)
	p = pushDownLimit(p)
	p = orderResiduals(p)
	return p
}

// --- Rule 5: order residual predicates ---

// orderResiduals sorts every scan's residual conjuncts so the cheapest
// and most selective evaluate first: equality comparisons (most
// selective, O(1) to check) before range comparisons, with predicates
// invoking functions — spatial relations, series operators — last, so
// a row a cheap predicate rejects never pays for an expensive one. The
// sort is stable, preserving the query's written order within a rank.
func orderResiduals(p Plan) Plan {
	switch v := p.(type) {
	case *ScanPlan:
		sort.SliceStable(v.Residual, func(i, j int) bool {
			return residualRank(v.Residual[i]) < residualRank(v.Residual[j])
		})
	case *FilterPlan:
		v.Child = orderResiduals(v.Child)
	case *ProjectPlan:
		v.Child = orderResiduals(v.Child)
	case *AggregatePlan:
		v.Child = orderResiduals(v.Child)
	case *SortPlan:
		v.Child = orderResiduals(v.Child)
	case *LimitPlan:
		v.Child = orderResiduals(v.Child)
	case *JoinPlan:
		v.Left = orderResiduals(v.Left)
		v.Right = orderResiduals(v.Right)
	}
	return p
}

// residualRank scores a predicate: 0 = equality, 1 = range/BETWEEN,
// 2 = other scalar forms, 3 = anything calling a function.
func residualRank(e Expr) int {
	if containsFuncCall(e) {
		return 3
	}
	switch v := e.(type) {
	case *BinaryExpr:
		switch v.Op {
		case "=":
			return 0
		case "<", "<=", ">", ">=", "!=", "<>":
			return 1
		}
	case *BetweenExpr:
		return 1
	}
	return 2
}

func containsFuncCall(e Expr) bool {
	switch v := e.(type) {
	case *FuncCall:
		return true
	case *InExpr:
		return true
	case *BinaryExpr:
		return containsFuncCall(v.L) || containsFuncCall(v.R)
	case *UnaryExpr:
		return containsFuncCall(v.X)
	case *BetweenExpr:
		return containsFuncCall(v.X) || containsFuncCall(v.Lo) || containsFuncCall(v.Hi)
	}
	return false
}

// --- Rule 4: push LIMIT into the scan ---

// pushDownLimit lowers a LIMIT sitting directly above a table scan —
// or above a purely 1-1 projection of one — into ScanPlan.Limit, so
// the storage scan stops emitting (and tears down its region workers)
// after N surviving rows instead of materializing the full result
// first. Residual predicates run inside the scan, so the scan's
// emitted-row count is exactly the row count the LIMIT observes; k-NN
// scans are skipped (their candidate search must not be truncated).
// The LimitPlan wrapper stays: it is a no-op over an already-truncated
// frame but keeps EXPLAIN output and plan shapes stable.
func pushDownLimit(p Plan) Plan {
	switch v := p.(type) {
	case *LimitPlan:
		v.Child = pushDownLimit(v.Child)
		target := v.Child
		if pr, ok := target.(*ProjectPlan); ok && !hasAnalysisItem(pr) {
			target = pr.Child
		}
		if sc, ok := target.(*ScanPlan); ok && sc.KNN == nil {
			if sc.Limit == 0 || v.N < sc.Limit {
				sc.Limit = v.N
			}
		}
	case *FilterPlan:
		v.Child = pushDownLimit(v.Child)
	case *ProjectPlan:
		v.Child = pushDownLimit(v.Child)
	case *AggregatePlan:
		v.Child = pushDownLimit(v.Child)
	case *SortPlan:
		v.Child = pushDownLimit(v.Child)
	case *JoinPlan:
		v.Left = pushDownLimit(v.Left)
		v.Right = pushDownLimit(v.Right)
	}
	return p
}

// hasAnalysisItem reports whether the projection invokes a 1-N/N-M
// analysis operator (whose output cardinality differs from its input).
func hasAnalysisItem(pr *ProjectPlan) bool {
	for _, it := range pr.Items {
		if call, ok := it.Expr.(*FuncCall); ok && analysisFuncs[call.Name] {
			return true
		}
	}
	return false
}

// --- Rule 1: calculate constant expressions ---

func foldPlanConstants(p Plan) Plan {
	switch v := p.(type) {
	case *FilterPlan:
		v.Cond = foldExpr(v.Cond)
		v.Child = foldPlanConstants(v.Child)
	case *ProjectPlan:
		for i := range v.Items {
			if v.Items[i].Expr != nil {
				v.Items[i].Expr = foldExpr(v.Items[i].Expr)
			}
		}
		v.Child = foldPlanConstants(v.Child)
	case *AggregatePlan:
		v.Child = foldPlanConstants(v.Child)
	case *SortPlan:
		for i := range v.Keys {
			v.Keys[i].Expr = foldExpr(v.Keys[i].Expr)
		}
		v.Child = foldPlanConstants(v.Child)
	case *LimitPlan:
		v.Child = foldPlanConstants(v.Child)
	case *JoinPlan:
		v.Left = foldPlanConstants(v.Left)
		v.Right = foldPlanConstants(v.Right)
	}
	return p
}

// foldExpr evaluates constant subexpressions bottom-up: `52 * 9` becomes
// `468`, `st_makeMBR(1,2,3,4)` becomes an MBR literal (which is what
// lets predicate pushdown recognize spatial windows).
func foldExpr(e Expr) Expr {
	switch v := e.(type) {
	case *BinaryExpr:
		v.L = foldExpr(v.L)
		v.R = foldExpr(v.R)
		if isConst(v.L) && isConst(v.R) && v.Op != "AND" && v.Op != "OR" {
			if val, err := evalExpr(v, nil, nil); err == nil {
				return &Literal{Val: val}
			}
		}
		return v
	case *UnaryExpr:
		v.X = foldExpr(v.X)
		if isConst(v.X) {
			if val, err := evalExpr(v, nil, nil); err == nil {
				return &Literal{Val: val}
			}
		}
		return v
	case *FuncCall:
		if analysisFuncs[v.Name] {
			return v // never fold analysis operators
		}
		if _, isAgg := aggKindOf(v.Name); isAgg {
			return v
		}
		allConst := true
		for i := range v.Args {
			v.Args[i] = foldExpr(v.Args[i])
			if !isConst(v.Args[i]) {
				allConst = false
			}
		}
		if allConst {
			if val, err := evalExpr(v, nil, nil); err == nil {
				return &Literal{Val: val}
			}
		}
		return v
	case *BetweenExpr:
		v.X = foldExpr(v.X)
		v.Lo = foldExpr(v.Lo)
		v.Hi = foldExpr(v.Hi)
		return v
	case *InExpr:
		for i := range v.Fn.Args {
			v.Fn.Args[i] = foldExpr(v.Fn.Args[i])
		}
		return v
	default:
		return e
	}
}

func isConst(e Expr) bool {
	_, ok := e.(*Literal)
	return ok
}

// --- Rule 2: push down selections ---

func pushDownFilters(p Plan) Plan {
	switch v := p.(type) {
	case *FilterPlan:
		// Push the filter through pure column projections (SELECT * or
		// plain column lists never rename, so predicates stay valid below).
		if proj, ok := v.Child.(*ProjectPlan); ok && isPureColumnProject(proj) {
			v.Child = proj.Child
			proj.Child = pushDownFilters(v)
			return pushDownFilters(proj)
		}
		v.Child = pushDownFilters(v.Child)
		// Push into a scan (possibly through nothing at all).
		if scan, ok := v.Child.(*ScanPlan); ok {
			residue := pushConjuncts(scan, splitConjuncts(v.Cond))
			if len(residue) == 0 {
				return scan
			}
			v.Cond = joinConjuncts(residue)
			return v
		}
		return v
	case *ProjectPlan:
		v.Child = pushDownFilters(v.Child)
		return v
	case *AggregatePlan:
		v.Child = pushDownFilters(v.Child)
		return v
	case *SortPlan:
		v.Child = pushDownFilters(v.Child)
		return v
	case *LimitPlan:
		v.Child = pushDownFilters(v.Child)
		return v
	case *JoinPlan:
		v.Left = pushDownFilters(v.Left)
		v.Right = pushDownFilters(v.Right)
		return v
	default:
		return p
	}
}

// isPureColumnProject reports whether every item is an unaliased column
// reference (so predicates can move below it unchanged).
func isPureColumnProject(p *ProjectPlan) bool {
	for _, it := range p.Items {
		if it.Star {
			continue
		}
		id, ok := it.Expr.(*Ident)
		if !ok || (it.Alias != "" && it.Alias != id.Name) {
			return false
		}
	}
	return true
}

func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

func joinConjuncts(es []Expr) Expr {
	out := es[0]
	for _, e := range es[1:] {
		out = &BinaryExpr{Op: "AND", L: out, R: e}
	}
	return out
}

// pushConjuncts moves each conjunct into the scan: spatial windows,
// temporal bounds and k-NN specs become index parameters; everything
// else that only references scan columns becomes a residual predicate.
// It returns the conjuncts that could not be pushed.
func pushConjuncts(scan *ScanPlan, conjuncts []Expr) []Expr {
	var residue []Expr
	schema := scan.Table.Schema()
	geomCol := scan.Table.Desc.GeomColumn
	timeCol := scan.Table.Desc.TimeColumn
	for _, c := range conjuncts {
		switch v := c.(type) {
		case *BinaryExpr:
			if v.Op == "WITHIN" {
				if id, ok := v.L.(*Ident); ok && id.Name == geomCol {
					if lit, ok := v.R.(*Literal); ok {
						if m, ok := lit.Val.(geom.MBR); ok {
							merged := m
							if scan.Window != nil {
								merged = scan.Window.Clip(m)
							}
							scan.Window = &merged
							continue
						}
						if g, ok := lit.Val.(geom.Geometry); ok {
							m := g.MBR()
							if scan.Window != nil {
								m = scan.Window.Clip(m)
							}
							scan.Window = &m
							continue
						}
					}
				}
			}
			// fid = literal → attribute-index point lookup (the paper's
			// attribute indexing, Fig. 1).
			if v.Op == "=" {
				if id, ok := v.L.(*Ident); ok && id.Name == scan.Table.Desc.FidColumn {
					if lit, ok := v.R.(*Literal); ok && lit.Val != nil {
						scan.FIDEq = lit.Val
						continue
					}
				}
			}
			// time <op> literal → temporal bound.
			if timeCol != "" {
				if id, ok := v.L.(*Ident); ok && id.Name == timeCol {
					if lit, ok := v.R.(*Literal); ok {
						if ms, err := toTimeMS(lit.Val); err == nil {
							switch v.Op {
							case ">=", ">":
								scan.TMin = maxTime(scan.TMin, ms)
								continue
							case "<=", "<":
								scan.TMax = minTime(scan.TMax, ms)
								continue
							case "=":
								scan.TMin = maxTime(scan.TMin, ms)
								scan.TMax = minTime(scan.TMax, ms)
								continue
							}
						}
					}
				}
			}
		case *BetweenExpr:
			if timeCol != "" {
				if id, ok := v.X.(*Ident); ok && id.Name == timeCol {
					lo, okLo := v.Lo.(*Literal)
					hi, okHi := v.Hi.(*Literal)
					if okLo && okHi {
						loMS, err1 := toTimeMS(lo.Val)
						hiMS, err2 := toTimeMS(hi.Val)
						if err1 == nil && err2 == nil {
							scan.TMin = maxTime(scan.TMin, loMS)
							scan.TMax = minTime(scan.TMax, hiMS)
							continue
						}
					}
				}
			}
		case *InExpr:
			// geom IN st_KNN(point, k) → k-NN scan.
			if id, ok := v.X.(*Ident); ok && id.Name == geomCol && v.Fn.Name == "st_knn" && len(v.Fn.Args) == 2 {
				pLit, okP := v.Fn.Args[0].(*Literal)
				kLit, okK := v.Fn.Args[1].(*Literal)
				if okP && okK {
					if p, ok := pLit.Val.(geom.Point); ok {
						if kv, ok := kLit.Val.(int64); ok && kv > 0 {
							scan.KNN = &KNNSpec{Point: p, K: int(kv)}
							continue
						}
					}
				}
			}
		}
		// Anything referencing only scan columns is evaluated inside the
		// scan (closer to the data); otherwise it stays above.
		if checkIdents(c, schema) == nil && !referencesItem(c) {
			scan.Residual = append(scan.Residual, c)
			continue
		}
		residue = append(residue, c)
	}
	return residue
}

func referencesItem(e Expr) bool {
	found := false
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *Ident:
			if v.Name == "item" {
				found = true
			}
		case *BinaryExpr:
			walk(v.L)
			walk(v.R)
		case *UnaryExpr:
			walk(v.X)
		case *BetweenExpr:
			walk(v.X)
			walk(v.Lo)
			walk(v.Hi)
		case *FuncCall:
			for _, a := range v.Args {
				walk(a)
			}
		case *InExpr:
			walk(v.X)
			walk(v.Fn)
		}
	}
	walk(e)
	return found
}

func maxTime(cur *int64, v int64) *int64 {
	if cur == nil || v > *cur {
		return &v
	}
	return cur
}

func minTime(cur *int64, v int64) *int64 {
	if cur == nil || v < *cur {
		return &v
	}
	return cur
}

// --- Rule 3: push down projections ---

// pruneColumns walks the plan collecting the columns each subtree needs,
// then narrows every ScanPlan to exactly those (Fig. 8b retrieves only
// name, geom, time and fid).
func pruneColumns(p Plan) Plan {
	prune(p, nil)
	return p
}

// prune narrows scans; needed == nil means "all columns".
func prune(p Plan, needed map[string]bool) {
	switch v := p.(type) {
	case *ScanPlan:
		if needed == nil {
			return
		}
		if needed["item"] || needed["*"] {
			return // whole-entity access needs every column
		}
		full := v.Table.Schema()
		var cols []string
		for _, f := range full.Fields {
			if needed[f.Name] {
				cols = append(cols, f.Name)
			}
		}
		if len(cols) > 0 && len(cols) < full.Len() {
			v.Cols = cols
		}
	case *ViewPlan:
		// Views are already materialized; nothing to prune.
	case *FilterPlan:
		if needed == nil {
			prune(v.Child, nil)
			return
		}
		child := addedCols(needed)
		collectIdents(v.Cond, child)
		prune(v.Child, child)
	case *ProjectPlan:
		// Narrow the projection itself to the columns the parent needs
		// (Fig. 8b rewrites the inner `SELECT *` to four columns).
		if needed != nil && isPureColumnProject(v) {
			var kept []SelectItem
			var fields []exec.Field
			schema := v.Schema()
			for i, it := range v.Items {
				if it.Star {
					continue
				}
				name := schema.Field(i).Name
				if needed[name] {
					kept = append(kept, it)
					fields = append(fields, schema.Field(i))
				}
			}
			if len(kept) > 0 && len(kept) < len(v.Items) {
				v.Items = kept
				v.schema = exec.NewSchema(fields...)
			}
		}
		child := map[string]bool{}
		for _, it := range v.Items {
			if it.Star {
				prune(v.Child, nil)
				return
			}
			collectIdents(it.Expr, child)
		}
		prune(v.Child, child)
	case *AggregatePlan:
		child := map[string]bool{}
		for _, k := range v.Keys {
			child[k] = true
		}
		for _, g := range v.Aggs {
			if g.Col != "*" && g.Col != "" {
				child[g.Col] = true
			}
		}
		prune(v.Child, child)
	case *SortPlan:
		if needed == nil {
			prune(v.Child, nil)
			return
		}
		child := addedCols(needed)
		for _, k := range v.Keys {
			collectIdents(k.Expr, child)
		}
		prune(v.Child, child)
	case *LimitPlan:
		prune(v.Child, needed)
	case *JoinPlan:
		// Join output names may be rewritten ("r_" prefix); keep both
		// sides whole rather than risk dropping a needed column.
		prune(v.Left, nil)
		prune(v.Right, nil)
	}
}

func addedCols(needed map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range needed {
		out[k] = true
	}
	return out
}

func collectIdents(e Expr, into map[string]bool) {
	switch v := e.(type) {
	case *Ident:
		into[v.Name] = true
	case *BinaryExpr:
		collectIdents(v.L, into)
		collectIdents(v.R, into)
	case *UnaryExpr:
		collectIdents(v.X, into)
	case *BetweenExpr:
		collectIdents(v.X, into)
		collectIdents(v.Lo, into)
		collectIdents(v.Hi, into)
	case *FuncCall:
		for _, a := range v.Args {
			collectIdents(a, into)
		}
	case *InExpr:
		collectIdents(v.X, into)
		collectIdents(v.Fn, into)
	}
}
