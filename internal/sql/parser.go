package sql

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Parse converts one JustQL statement into its AST.
func Parse(src string) (Statement, error) {
	l, err := newLexer(src)
	if err != nil {
		return nil, err
	}
	p := &parser{l: l}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.l.matchOp(";")
	if t := p.l.peek(); t.kind != tokEOF {
		return nil, &SyntaxError{t.pos, fmt.Sprintf("unexpected trailing input %q", t.text)}
	}
	return stmt, nil
}

type parser struct {
	l *lexer
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.l.isKeyword("CREATE"):
		p.l.next()
		switch {
		case p.l.matchKeyword("TABLE"):
			return p.parseCreateTable()
		case p.l.matchKeyword("VIEW"):
			return p.parseCreateView()
		default:
			t := p.l.peek()
			return nil, &SyntaxError{t.pos, "expected TABLE or VIEW after CREATE"}
		}
	case p.l.isKeyword("DROP"):
		p.l.next()
		isView := false
		if p.l.matchKeyword("VIEW") {
			isView = true
		} else if err := p.l.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.l.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropStmt{IsView: isView, Name: name}, nil
	case p.l.isKeyword("SHOW"):
		p.l.next()
		if p.l.matchKeyword("VIEWS") {
			return &ShowStmt{Views: true}, nil
		}
		if err := p.l.expectKeyword("TABLES"); err != nil {
			return nil, err
		}
		return &ShowStmt{}, nil
	case p.l.isKeyword("DESC") || p.l.isKeyword("DESCRIBE"):
		p.l.next()
		isView := false
		if p.l.matchKeyword("VIEW") {
			isView = true
		} else {
			p.l.matchKeyword("TABLE") // optional
		}
		name, err := p.l.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DescStmt{IsView: isView, Name: name}, nil
	case p.l.isKeyword("INSERT"):
		return p.parseInsert()
	case p.l.isKeyword("LOAD"):
		return p.parseLoad()
	case p.l.isKeyword("STORE"):
		p.l.next()
		if err := p.l.expectKeyword("VIEW"); err != nil {
			return nil, err
		}
		view, err := p.l.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.l.expectKeyword("TO"); err != nil {
			return nil, err
		}
		if err := p.l.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		tbl, err := p.l.expectIdent()
		if err != nil {
			return nil, err
		}
		return &StoreViewStmt{View: view, Table: tbl}, nil
	case p.l.isKeyword("EXPLAIN"):
		p.l.next()
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: q}, nil
	case p.l.isKeyword("SELECT"):
		return p.parseSelect()
	default:
		t := p.l.peek()
		return nil, &SyntaxError{t.pos, fmt.Sprintf("unknown statement start %q", t.text)}
	}
}

func (p *parser) parseCreateView() (Statement, error) {
	name, err := p.l.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.l.expectKeyword("AS"); err != nil {
		return nil, err
	}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &CreateViewStmt{Name: name, Query: q}, nil
}

func (p *parser) parseCreateTable() (Statement, error) {
	name, err := p.l.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Name: name}
	if p.l.matchKeyword("AS") {
		plugin, err := p.l.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Plugin = plugin
	} else {
		if err := p.l.expectOp("("); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if p.l.matchOp(",") {
				continue
			}
			break
		}
		if err := p.l.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.l.matchKeyword("USERDATA") {
		ud, err := p.parseJSONMap()
		if err != nil {
			return nil, err
		}
		st.UserData = ud
	}
	return st, nil
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	name, err := p.l.expectIdent()
	if err != nil {
		return ColumnDef{}, err
	}
	typeName, err := p.l.expectIdent()
	if err != nil {
		return ColumnDef{}, err
	}
	col := ColumnDef{Name: name, TypeName: strings.ToLower(typeName)}
	for p.l.matchOp(":") {
		mod, err := p.parseColumnMod()
		if err != nil {
			return ColumnDef{}, err
		}
		col.Mods = append(col.Mods, mod)
	}
	return col, nil
}

// parseColumnMod parses one modifier after ':' — `primary key`,
// `srid=4326`, `compress=gzip|zip|lz4` (alternatives allowed; the first is
// used).
func (p *parser) parseColumnMod() (string, error) {
	word, err := p.l.expectIdent()
	if err != nil {
		return "", err
	}
	word = strings.ToLower(word)
	if word == "primary" {
		if err := p.l.expectKeyword("key"); err != nil {
			return "", err
		}
		return "primary key", nil
	}
	if p.l.matchOp("=") {
		t := p.l.peek()
		var val string
		switch t.kind {
		case tokNumber, tokIdent, tokString:
			val = p.l.next().text
		default:
			return "", &SyntaxError{t.pos, "expected modifier value"}
		}
		// compress=gzip|zip|lz4 offers alternatives; take the first.
		for p.l.matchOp("|") {
			if _, err := p.l.expectIdent(); err != nil {
				return "", err
			}
		}
		return word + "=" + strings.ToLower(val), nil
	}
	return word, nil
}

// parseJSONMap parses the {json} blob after USERDATA / CONFIG into a
// string map.
func (p *parser) parseJSONMap() (map[string]string, error) {
	t := p.l.peek()
	if t.kind != tokJSON {
		return nil, &SyntaxError{t.pos, "expected { ... } block"}
	}
	p.l.next()
	// JustQL permits single-quoted JSON; normalize to double quotes.
	normalized := normalizeJSONQuotes(t.text)
	var raw map[string]any
	if err := json.Unmarshal([]byte(normalized), &raw); err != nil {
		return nil, &SyntaxError{t.pos, fmt.Sprintf("bad JSON: %v", err)}
	}
	out := make(map[string]string, len(raw))
	for k, v := range raw {
		out[k] = fmt.Sprintf("%v", v)
	}
	return out, nil
}

// normalizeJSONQuotes converts single-quoted JSON (as the paper writes
// USERDATA blocks) into standard JSON.
func normalizeJSONQuotes(s string) string {
	var sb strings.Builder
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\' && i+1 < len(s):
			sb.WriteByte(c)
			i++
			sb.WriteByte(s[i])
		case c == '\'' && !inDouble:
			inSingle = !inSingle
			sb.WriteByte('"')
		case c == '"' && !inSingle:
			inDouble = !inDouble
			sb.WriteByte('"')
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

func (p *parser) parseInsert() (Statement, error) {
	p.l.next() // INSERT
	if err := p.l.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.l.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.l.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	for {
		if err := p.l.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.l.matchOp(",") {
				continue
			}
			break
		}
		if err := p.l.expectOp(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.l.matchOp(",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) parseLoad() (Statement, error) {
	p.l.next() // LOAD
	srcKind, err := p.l.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.l.expectOp(":"); err != nil {
		return nil, err
	}
	src, err := p.parseSourcePath()
	if err != nil {
		return nil, err
	}
	if err := p.l.expectKeyword("TO"); err != nil {
		return nil, err
	}
	if _, err := p.l.expectIdent(); err != nil { // "geomesa"
		return nil, err
	}
	if err := p.l.expectOp(":"); err != nil {
		return nil, err
	}
	dst, err := p.l.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &LoadStmt{SrcKind: strings.ToLower(srcKind), Src: src, Dst: dst}
	if p.l.matchKeyword("CONFIG") {
		cfg, err := p.parseJSONMap()
		if err != nil {
			return nil, err
		}
		st.Config = cfg
	}
	if p.l.matchKeyword("FILTER") {
		t := p.l.peek()
		if t.kind != tokString {
			return nil, &SyntaxError{t.pos, "FILTER expects a quoted string"}
		}
		p.l.next()
		st.Filter = t.text
	}
	return st, nil
}

// parseSourcePath reads a path-like source: a quoted string, or
// dotted/slashed identifiers (hive db.table).
func (p *parser) parseSourcePath() (string, error) {
	t := p.l.peek()
	if t.kind == tokString {
		p.l.next()
		return t.text, nil
	}
	var sb strings.Builder
	first, err := p.l.expectIdent()
	if err != nil {
		return "", err
	}
	sb.WriteString(first)
	for {
		if p.l.matchOp(".") {
			part, err := p.l.expectIdent()
			if err != nil {
				return "", err
			}
			sb.WriteByte('.')
			sb.WriteString(part)
			continue
		}
		if p.l.matchOp("/") {
			part, err := p.l.expectIdent()
			if err != nil {
				return "", err
			}
			sb.WriteByte('/')
			sb.WriteString(part)
			continue
		}
		return sb.String(), nil
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.l.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{Limit: -1}
	for {
		if p.l.matchOp("*") {
			st.Items = append(st.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.l.matchKeyword("AS") {
				alias, err := p.l.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			}
			st.Items = append(st.Items, item)
		}
		if p.l.matchOp(",") {
			continue
		}
		break
	}
	if err := p.l.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseFrom()
	if err != nil {
		return nil, err
	}
	st.From = from
	if p.l.isKeyword("JOIN") || p.l.isKeyword("LEFT") || p.l.isKeyword("INNER") {
		join, err := p.parseJoin()
		if err != nil {
			return nil, err
		}
		st.Join = join
	}
	if p.l.matchKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.l.matchKeyword("GROUP") {
		if err := p.l.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if p.l.matchOp(",") {
				continue
			}
			break
		}
	}
	if p.l.matchKeyword("ORDER") {
		if err := p.l.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.l.matchKeyword("DESC") {
				key.Desc = true
			} else {
				p.l.matchKeyword("ASC")
			}
			st.OrderBy = append(st.OrderBy, key)
			if p.l.matchOp(",") {
				continue
			}
			break
		}
	}
	if p.l.matchKeyword("LIMIT") {
		t := p.l.peek()
		if t.kind != tokNumber {
			return nil, &SyntaxError{t.pos, "LIMIT expects a number"}
		}
		p.l.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, &SyntaxError{t.pos, "bad LIMIT"}
		}
		st.Limit = n
	}
	return st, nil
}

func (p *parser) parseFrom() (*FromItem, error) {
	if p.l.matchOp("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.l.expectOp(")"); err != nil {
			return nil, err
		}
		item := &FromItem{Subquery: sub}
		if t := p.l.peek(); t.kind == tokIdent && !isReserved(t.text) {
			item.Alias = p.l.next().text
		}
		return item, nil
	}
	name, err := p.l.expectIdent()
	if err != nil {
		return nil, err
	}
	item := &FromItem{Table: name}
	if t := p.l.peek(); t.kind == tokIdent && !isReserved(t.text) {
		item.Alias = p.l.next().text
	}
	return item, nil
}

var reserved = map[string]bool{
	"WHERE": true, "GROUP": true, "ORDER": true, "LIMIT": true,
	"AND": true, "OR": true, "NOT": true, "AS": true, "BETWEEN": true,
	"IN": true, "WITHIN": true, "SELECT": true, "FROM": true,
	"BY": true, "ASC": true, "DESC": true, "VALUES": true,
	"TRUE": true, "FALSE": true, "NULL": true,
	"JOIN": true, "LEFT": true, "INNER": true, "ON": true,
}

// parseJoin parses `[LEFT|INNER] JOIN <source> ON col = col`.
func (p *parser) parseJoin() (*JoinClause, error) {
	jc := &JoinClause{}
	if p.l.matchKeyword("LEFT") {
		jc.Left = true
	} else {
		p.l.matchKeyword("INNER")
	}
	if err := p.l.expectKeyword("JOIN"); err != nil {
		return nil, err
	}
	right, err := p.parseFrom()
	if err != nil {
		return nil, err
	}
	jc.Right = right
	if err := p.l.expectKeyword("ON"); err != nil {
		return nil, err
	}
	left, err := p.parseQualifiedColumn()
	if err != nil {
		return nil, err
	}
	if err := p.l.expectOp("="); err != nil {
		return nil, err
	}
	rightCol, err := p.parseQualifiedColumn()
	if err != nil {
		return nil, err
	}
	jc.LeftCol, jc.RightCol = left, rightCol
	return jc, nil
}

// parseQualifiedColumn reads `col` or `alias.col`, keeping only the
// column part (JustQL joins resolve by unambiguous column name).
func (p *parser) parseQualifiedColumn() (string, error) {
	name, err := p.l.expectIdent()
	if err != nil {
		return "", err
	}
	if p.l.matchOp(".") {
		return p.l.expectIdent()
	}
	return name, nil
}

func isReserved(s string) bool { return reserved[strings.ToUpper(s)] }

// Expression grammar, lowest precedence first:
//
//	orExpr    := andExpr (OR andExpr)*
//	andExpr   := notExpr (AND notExpr)*
//	notExpr   := NOT notExpr | predicate
//	predicate := additive ((=|!=|<|<=|>|>=|WITHIN) additive
//	             | BETWEEN additive AND additive | IN funcCall)?
//	additive  := multiplicative ((+|-) multiplicative)*
//	mult      := unary ((*|/) unary)*
//	unary     := - unary | primary
//	primary   := literal | funcCall | ident | ( orExpr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.l.matchKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.l.matchKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.l.matchKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.l.peek()
	if t.kind == tokOp {
		switch t.text {
		case "=", "!=", "<>", "<", "<=", ">", ">=":
			p.l.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			op := t.text
			if op == "<>" {
				op = "!="
			}
			return &BinaryExpr{Op: op, L: left, R: right}, nil
		}
	}
	if p.l.matchKeyword("WITHIN") {
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "WITHIN", L: left, R: right}, nil
	}
	if p.l.matchKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.l.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: left, Lo: lo, Hi: hi}, nil
	}
	if p.l.matchKeyword("IN") {
		fn, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		call, ok := fn.(*FuncCall)
		if !ok {
			return nil, &SyntaxError{t.pos, "IN expects a function call (e.g. st_KNN)"}
		}
		return &InExpr{X: left, Fn: call}, nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.l.peek()
		if t.kind == tokOp && (t.text == "+" || t.text == "-") {
			p.l.next()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.l.peek()
		if t.kind == tokOp && (t.text == "*" || t.text == "/") {
			p.l.next()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.l.matchOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.l.peek()
	switch t.kind {
	case tokNumber:
		p.l.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, &SyntaxError{t.pos, "bad number"}
			}
			return &Literal{Val: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, &SyntaxError{t.pos, "bad number"}
		}
		return &Literal{Val: n}, nil
	case tokString:
		p.l.next()
		return &Literal{Val: t.text}, nil
	case tokIdent:
		upper := strings.ToUpper(t.text)
		switch upper {
		case "TRUE":
			p.l.next()
			return &Literal{Val: true}, nil
		case "FALSE":
			p.l.next()
			return &Literal{Val: false}, nil
		case "NULL":
			p.l.next()
			return &Literal{Val: nil}, nil
		}
		p.l.next()
		if p.l.matchOp("(") {
			call := &FuncCall{Name: strings.ToLower(t.text)}
			if p.l.matchOp(")") {
				return call, nil
			}
			for {
				if p.l.matchOp("*") {
					call.Args = append(call.Args, &Ident{Name: "*"})
				} else {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
				}
				if p.l.matchOp(",") {
					continue
				}
				break
			}
			if err := p.l.expectOp(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		name := t.text
		// Qualified name t.col: keep the column part (single-table
		// queries only, as in the paper's examples).
		if p.l.matchOp(".") {
			col, err := p.l.expectIdent()
			if err != nil {
				return nil, err
			}
			name = col
		}
		return &Ident{Name: name}, nil
	case tokOp:
		if t.text == "(" {
			p.l.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.l.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, &SyntaxError{t.pos, fmt.Sprintf("unexpected token %q", t.text)}
}
