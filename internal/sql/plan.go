package sql

import (
	"fmt"
	"strings"

	"just/internal/core"
	"just/internal/exec"
	"just/internal/geom"
	"just/internal/table"
)

// Plan is a logical plan node (Fig. 8: each node is a logical operation,
// children are inputs).
type Plan interface {
	Schema() *exec.Schema
	Children() []Plan
	String() string
}

// KNNSpec is a pushed-down k-NN predicate.
type KNNSpec struct {
	Point geom.Point
	K     int
}

// ScanPlan reads a stored table. The optimizer pushes the
// spatio-temporal window, k-NN spec, residual predicates and the column
// projection into it; the executor lowers it to index scans.
type ScanPlan struct {
	Table *table.Table
	// Window is the pushed spatial predicate (nil = no spatial filter).
	Window *geom.MBR
	// TMin/TMax are the pushed temporal bounds (nil = unbounded).
	TMin, TMax *int64
	// KNN is the pushed k-NN predicate.
	KNN *KNNSpec
	// FIDEq short-circuits the scan to one attribute-index point lookup
	// when the query pins the primary key (`fid = const`).
	FIDEq any
	// Residual predicates are evaluated on each decoded row during the
	// scan, before the row leaves the storage layer.
	Residual []Expr
	// Cols is the pushed projection (nil = all columns).
	Cols []string
	// Limit stops the scan after emitting this many surviving rows
	// (0 = unlimited) — pushed down from a LIMIT directly above the
	// scan so region workers are cancelled instead of materializing
	// the whole result.
	Limit int
}

// Schema implements Plan.
func (s *ScanPlan) Schema() *exec.Schema {
	full := s.Table.Schema()
	if s.Cols == nil {
		return full
	}
	fields := make([]exec.Field, 0, len(s.Cols))
	for _, c := range s.Cols {
		i := full.Index(c)
		fields = append(fields, full.Field(i))
	}
	return exec.NewSchema(fields...)
}

// Children implements Plan.
func (s *ScanPlan) Children() []Plan { return nil }

func (s *ScanPlan) String() string {
	parts := []string{fmt.Sprintf("Scan[%s", s.Table.Desc.Name)}
	if s.Window != nil {
		parts = append(parts, fmt.Sprintf("window=%v", *s.Window))
	}
	if s.TMin != nil || s.TMax != nil {
		parts = append(parts, "time-bounded")
	}
	if s.KNN != nil {
		parts = append(parts, fmt.Sprintf("knn(k=%d)", s.KNN.K))
	}
	if s.FIDEq != nil {
		parts = append(parts, fmt.Sprintf("fid=%v", s.FIDEq))
	}
	for _, r := range s.Residual {
		parts = append(parts, "residual="+exprString(r))
	}
	if s.Cols != nil {
		parts = append(parts, "cols="+strings.Join(s.Cols, ","))
	}
	if s.Limit > 0 {
		parts = append(parts, fmt.Sprintf("limit=%d", s.Limit))
	}
	return strings.Join(parts, " ") + "]"
}

// ViewPlan reads an in-memory view table.
type ViewPlan struct {
	View *table.View
}

// Schema implements Plan.
func (v *ViewPlan) Schema() *exec.Schema { return v.View.Frame.Schema() }

// Children implements Plan.
func (v *ViewPlan) Children() []Plan { return nil }

func (v *ViewPlan) String() string { return fmt.Sprintf("ViewScan[%s]", v.View.Name) }

// JoinPlan hash-joins two children on column equality.
type JoinPlan struct {
	Left, Right       Plan
	LeftCol, RightCol string
	LeftOuter         bool
}

// Schema implements Plan: left columns then right columns, duplicates
// prefixed "r_" (mirroring exec.DataFrame.Join).
func (j *JoinPlan) Schema() *exec.Schema {
	fields := append([]exec.Field{}, j.Left.Schema().Fields...)
	taken := map[string]bool{}
	for _, f := range fields {
		taken[f.Name] = true
	}
	for _, f := range j.Right.Schema().Fields {
		name := f.Name
		if taken[name] {
			name = "r_" + name
		}
		taken[name] = true
		fields = append(fields, exec.Field{Name: name, Type: f.Type})
	}
	return exec.NewSchema(fields...)
}

// Children implements Plan.
func (j *JoinPlan) Children() []Plan { return []Plan{j.Left, j.Right} }

func (j *JoinPlan) String() string {
	kind := "Join"
	if j.LeftOuter {
		kind = "LeftJoin"
	}
	return fmt.Sprintf("%s[%s = %s]", kind, j.LeftCol, j.RightCol)
}

// FilterPlan keeps rows satisfying Cond.
type FilterPlan struct {
	Cond  Expr
	Child Plan
}

// Schema implements Plan.
func (f *FilterPlan) Schema() *exec.Schema { return f.Child.Schema() }

// Children implements Plan.
func (f *FilterPlan) Children() []Plan { return []Plan{f.Child} }

func (f *FilterPlan) String() string { return "Filter[" + exprString(f.Cond) + "]" }

// AggregatePlan groups and aggregates.
type AggregatePlan struct {
	Keys  []string
	Aggs  []exec.Agg
	Child Plan
}

// Schema implements Plan.
func (a *AggregatePlan) Schema() *exec.Schema {
	child := a.Child.Schema()
	fields := make([]exec.Field, 0, len(a.Keys)+len(a.Aggs))
	for _, k := range a.Keys {
		i := child.Index(k)
		fields = append(fields, child.Field(i))
	}
	for _, g := range a.Aggs {
		t := exec.TypeFloat
		if g.Kind == exec.AggCount {
			t = exec.TypeInt
		} else if (g.Kind == exec.AggMin || g.Kind == exec.AggMax) && g.Col != "*" {
			if i := child.Index(g.Col); i >= 0 {
				t = child.Field(i).Type
			}
		}
		fields = append(fields, exec.Field{Name: g.Name, Type: t})
	}
	return exec.NewSchema(fields...)
}

// Children implements Plan.
func (a *AggregatePlan) Children() []Plan { return []Plan{a.Child} }

func (a *AggregatePlan) String() string {
	return fmt.Sprintf("Aggregate[keys=%v aggs=%d]", a.Keys, len(a.Aggs))
}

// ProjectPlan evaluates the SELECT items.
type ProjectPlan struct {
	Items  []SelectItem
	Child  Plan
	schema *exec.Schema
}

// Schema implements Plan.
func (p *ProjectPlan) Schema() *exec.Schema { return p.schema }

// Children implements Plan.
func (p *ProjectPlan) Children() []Plan { return []Plan{p.Child} }

func (p *ProjectPlan) String() string {
	var names []string
	for _, it := range p.Items {
		if it.Star {
			names = append(names, "*")
		} else {
			names = append(names, exprString(it.Expr))
		}
	}
	return "Project[" + strings.Join(names, ", ") + "]"
}

// SortPlan orders rows.
type SortPlan struct {
	Keys  []OrderKey
	Child Plan
}

// Schema implements Plan.
func (s *SortPlan) Schema() *exec.Schema { return s.Child.Schema() }

// Children implements Plan.
func (s *SortPlan) Children() []Plan { return []Plan{s.Child} }

func (s *SortPlan) String() string { return fmt.Sprintf("Sort[%d keys]", len(s.Keys)) }

// LimitPlan truncates the result.
type LimitPlan struct {
	N     int
	Child Plan
}

// Schema implements Plan.
func (l *LimitPlan) Schema() *exec.Schema { return l.Child.Schema() }

// Children implements Plan.
func (l *LimitPlan) Children() []Plan { return []Plan{l.Child} }

func (l *LimitPlan) String() string { return fmt.Sprintf("Limit[%d]", l.N) }

// PlanString renders a plan tree for EXPLAIN-style output and tests.
func PlanString(p Plan) string {
	var sb strings.Builder
	var walk func(p Plan, depth int)
	walk = func(p Plan, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(p.String())
		sb.WriteByte('\n')
		for _, c := range p.Children() {
			walk(c, depth+1)
		}
	}
	walk(p, 0)
	return sb.String()
}

// analyzer resolves names against the meta table and builds the analyzed
// logical plan (SQL Parse step of Section VI).
type analyzer struct {
	engine *core.Engine
	user   string
}

// aggFuncNames identify aggregate calls in projections.
func aggKindOf(name string) (exec.AggKind, bool) { return exec.ParseAgg(name) }

// analyzeSelect builds the analyzed (unoptimized) plan for a SELECT.
func (a *analyzer) analyzeSelect(st *SelectStmt) (Plan, error) {
	if st.From == nil {
		return nil, fmt.Errorf("sql: SELECT without FROM")
	}
	base, err := a.analyzeFromItem(st.From)
	if err != nil {
		return nil, err
	}

	if st.Join != nil {
		right, err := a.analyzeFromItem(st.Join.Right)
		if err != nil {
			return nil, err
		}
		lc, rc, err := resolveJoinKeys(st.Join, base.Schema(), right.Schema())
		if err != nil {
			return nil, err
		}
		base = &JoinPlan{
			Left: base, Right: right,
			LeftCol: lc, RightCol: rc,
			LeftOuter: st.Join.Left,
		}
	}

	// Expand SELECT * and validate identifiers.
	schema := base.Schema()
	items, err := expandItems(st.Items, schema)
	if err != nil {
		return nil, err
	}

	if st.Where != nil {
		if err := checkIdents(st.Where, schema); err != nil {
			return nil, err
		}
		base = &FilterPlan{Cond: st.Where, Child: base}
	}

	// GROUP BY may reference projection aliases of computed expressions
	// (e.g. `st_geohash(geom, 7) AS block ... GROUP BY block`): inject a
	// pre-projection that materializes those as columns first.
	groupBy, base, items, err := materializeGroupKeys(st.GroupBy, items, base)
	if err != nil {
		return nil, err
	}

	// Aggregate detection.
	keys, aggs, aggItems, hasAgg, err := extractAggs(items, groupBy, base.Schema())
	if err != nil {
		return nil, err
	}
	if hasAgg {
		base = &AggregatePlan{Keys: keys, Aggs: aggs, Child: base}
		items = aggItems
	}

	// Sort before the final projection so ORDER BY can reference
	// non-projected columns (the paper's Fig. 8 example).
	if len(st.OrderBy) > 0 {
		for _, k := range st.OrderBy {
			if err := checkIdents(k.Expr, base.Schema()); err != nil {
				return nil, err
			}
		}
		base = &SortPlan{Keys: st.OrderBy, Child: base}
	}

	proj, err := newProjectPlan(items, base)
	if err != nil {
		return nil, err
	}
	base = proj

	if st.Limit >= 0 {
		base = &LimitPlan{N: st.Limit, Child: base}
	}
	return base, nil
}

// analyzeFromItem resolves one FROM source: subquery, view, or table
// (views shadow tables).
func (a *analyzer) analyzeFromItem(fi *FromItem) (Plan, error) {
	if fi.Subquery != nil {
		return a.analyzeSelect(fi.Subquery)
	}
	if v, err := a.engine.Views().Get(a.user, fi.Table); err == nil {
		return &ViewPlan{View: v}, nil
	}
	t, err := a.engine.OpenTable(a.user, fi.Table)
	if err != nil {
		return nil, err
	}
	return &ScanPlan{Table: t}, nil
}

// resolveJoinKeys locates the join columns: each key must resolve in its
// own side; if the declared left key only exists on the right (and vice
// versa), the keys are swapped.
func resolveJoinKeys(jc *JoinClause, left, right *exec.Schema) (string, string, error) {
	l, r := jc.LeftCol, jc.RightCol
	if left.Index(l) >= 0 && right.Index(r) >= 0 {
		return l, r, nil
	}
	if left.Index(r) >= 0 && right.Index(l) >= 0 {
		return r, l, nil
	}
	return "", "", fmt.Errorf("sql: join keys %q/%q do not resolve (left has %v, right has %v)",
		l, r, left.Names(), right.Names())
}

func expandItems(items []SelectItem, schema *exec.Schema) ([]SelectItem, error) {
	var out []SelectItem
	for _, it := range items {
		if it.Star {
			for _, f := range schema.Fields {
				out = append(out, SelectItem{Expr: &Ident{Name: f.Name}})
			}
			continue
		}
		if err := checkIdents(it.Expr, schema); err != nil {
			return nil, err
		}
		out = append(out, it)
	}
	return out, nil
}

// checkIdents verifies every column reference resolves; "item" and "*"
// are pseudo-columns (plugin entity / COUNT-star).
func checkIdents(e Expr, schema *exec.Schema) error {
	switch v := e.(type) {
	case *Ident:
		if v.Name == "item" || v.Name == "*" {
			return nil
		}
		if schema.Index(v.Name) < 0 {
			return fmt.Errorf("sql: unknown column %q", v.Name)
		}
	case *BinaryExpr:
		if err := checkIdents(v.L, schema); err != nil {
			return err
		}
		return checkIdents(v.R, schema)
	case *UnaryExpr:
		return checkIdents(v.X, schema)
	case *BetweenExpr:
		if err := checkIdents(v.X, schema); err != nil {
			return err
		}
		if err := checkIdents(v.Lo, schema); err != nil {
			return err
		}
		return checkIdents(v.Hi, schema)
	case *FuncCall:
		for _, arg := range v.Args {
			if err := checkIdents(arg, schema); err != nil {
				return err
			}
		}
	case *InExpr:
		if err := checkIdents(v.X, schema); err != nil {
			return err
		}
		return checkIdents(v.Fn, schema)
	}
	return nil
}

// materializeGroupKeys handles GROUP BY over computed expressions: when
// a group key is an alias of a non-column projection (or any non-ident
// expression), it inserts a projection below the aggregate that computes
// the key as a real column, and rewrites the SELECT items accordingly.
func materializeGroupKeys(groupBy []Expr, items []SelectItem, base Plan) ([]Expr, Plan, []SelectItem, error) {
	if len(groupBy) == 0 {
		return groupBy, base, items, nil
	}
	schema := base.Schema()
	needsPre := false
	for _, g := range groupBy {
		if id, ok := g.(*Ident); ok && schema.Index(id.Name) >= 0 {
			continue
		}
		needsPre = true
	}
	if !needsPre {
		return groupBy, base, items, nil
	}
	// Pre-projection columns: one per group key (named by alias or
	// generated), plus every source column any aggregate needs.
	var preItems []SelectItem
	outGroup := make([]Expr, len(groupBy))
	for i, g := range groupBy {
		name := fmt.Sprintf("group_%d", i)
		expr := g
		if id, ok := g.(*Ident); ok {
			if schema.Index(id.Name) >= 0 {
				preItems = append(preItems, SelectItem{Expr: id})
				outGroup[i] = id
				continue
			}
			// Alias of a projected expression?
			resolved := false
			for _, it := range items {
				if it.Alias == id.Name && it.Expr != nil {
					expr = it.Expr
					name = id.Name
					resolved = true
					break
				}
			}
			if !resolved {
				return nil, nil, nil, fmt.Errorf("sql: unknown group column %q", id.Name)
			}
		}
		preItems = append(preItems, SelectItem{Expr: expr, Alias: name})
		outGroup[i] = &Ident{Name: name}
		// Rewrite SELECT items that used the same expression/alias.
		for j, it := range items {
			if it.Alias == name || exprString(it.Expr) == exprString(expr) {
				alias := it.Alias
				if alias == "" {
					alias = name
				}
				items[j] = SelectItem{Expr: &Ident{Name: name}, Alias: alias}
			}
		}
	}
	// Carry aggregate source columns through the pre-projection.
	carried := map[string]bool{}
	for _, it := range preItems {
		if id, ok := it.Expr.(*Ident); ok && it.Alias == "" {
			carried[id.Name] = true
		}
		if it.Alias != "" {
			carried[it.Alias] = true
		}
	}
	for _, it := range items {
		if call, ok := it.Expr.(*FuncCall); ok {
			if _, isAgg := aggKindOf(call.Name); isAgg {
				for _, a := range call.Args {
					if id, ok := a.(*Ident); ok && id.Name != "*" && !carried[id.Name] {
						if schema.Index(id.Name) < 0 {
							return nil, nil, nil, fmt.Errorf("sql: unknown column %q", id.Name)
						}
						preItems = append(preItems, SelectItem{Expr: id})
						carried[id.Name] = true
					}
				}
			}
		}
	}
	pre, err := newProjectPlan(preItems, base)
	if err != nil {
		return nil, nil, nil, err
	}
	return outGroup, pre, items, nil
}

// extractAggs splits projections into group keys and aggregate calls.
func extractAggs(items []SelectItem, groupBy []Expr, schema *exec.Schema) (
	keys []string, aggs []exec.Agg, outItems []SelectItem, hasAgg bool, err error) {
	for _, g := range groupBy {
		id, ok := g.(*Ident)
		if !ok {
			return nil, nil, nil, false, fmt.Errorf("sql: GROUP BY supports column names only")
		}
		if schema.Index(id.Name) < 0 {
			return nil, nil, nil, false, fmt.Errorf("sql: unknown group column %q", id.Name)
		}
		keys = append(keys, id.Name)
	}
	for _, it := range items {
		if call, ok := it.Expr.(*FuncCall); ok {
			if _, isAgg := aggKindOf(call.Name); isAgg {
				hasAgg = true
			}
		}
	}
	if !hasAgg && len(groupBy) == 0 {
		return nil, nil, items, false, nil
	}
	// Build agg list and rewrite items against the aggregate schema.
	for i, it := range items {
		switch v := it.Expr.(type) {
		case *Ident:
			found := false
			for _, k := range keys {
				if k == v.Name {
					found = true
					break
				}
			}
			if !found {
				return nil, nil, nil, false,
					fmt.Errorf("sql: column %q must appear in GROUP BY or an aggregate", v.Name)
			}
			outItems = append(outItems, it)
		case *FuncCall:
			kind, isAgg := aggKindOf(v.Name)
			if !isAgg {
				return nil, nil, nil, false,
					fmt.Errorf("sql: non-aggregate %q in grouped query", v.Name)
			}
			col := "*"
			if len(v.Args) == 1 {
				if id, ok := v.Args[0].(*Ident); ok {
					col = id.Name
				} else {
					return nil, nil, nil, false,
						fmt.Errorf("sql: aggregate argument must be a column")
				}
			}
			name := it.Alias
			if name == "" {
				name = fmt.Sprintf("%s_%d", v.Name, i)
			}
			aggs = append(aggs, exec.Agg{Kind: kind, Col: col, Name: name})
			outItems = append(outItems, SelectItem{Expr: &Ident{Name: name}, Alias: it.Alias})
		default:
			return nil, nil, nil, false,
				fmt.Errorf("sql: unsupported projection in grouped query")
		}
	}
	return keys, aggs, outItems, true, nil
}

// analysisFuncs are the 1-N / N-M operations the executor implements with
// its own operators (Spark UDFs cannot express them, Section V-D).
var analysisFuncs = map[string]bool{
	"st_trajnoisefilter":  true,
	"st_trajsegmentation": true,
	"st_trajstaypoint":    true,
	"st_dbscan":           true,
}

func newProjectPlan(items []SelectItem, child Plan) (*ProjectPlan, error) {
	schema := child.Schema()
	fields := make([]exec.Field, 0, len(items))
	for i, it := range items {
		name := it.Alias
		var typ exec.DataType
		switch v := it.Expr.(type) {
		case *Ident:
			if name == "" {
				name = v.Name
			}
			if v.Name == "item" {
				typ = exec.TypeBytes // whole-entity pseudo column
			} else if j := schema.Index(v.Name); j >= 0 {
				typ = schema.Field(j).Type
			}
		case *FuncCall:
			if name == "" {
				name = v.Name
			}
			if analysisFuncs[v.Name] {
				// 1-N / N-M operators define their own output schema.
				s, err := analysisOutputSchema(v.Name, schema)
				if err != nil {
					return nil, err
				}
				if len(items) != 1 {
					return nil, fmt.Errorf("sql: %s must be the only projection", v.Name)
				}
				return &ProjectPlan{Items: items, Child: child, schema: s}, nil
			}
			typ = exec.TypeFloat // scalar funcs default; refined at runtime
			if strings.HasPrefix(v.Name, "st_") {
				typ = exec.TypeGeometry
			}
			if v.Name == "st_aswkt" || v.Name == "st_geohash" {
				typ = exec.TypeString
			}
			if v.Name == "to_time" || v.Name == "to_long" || v.Name == "long_to_date_ms" {
				typ = exec.TypeInt
			}
		default:
			if name == "" {
				name = fmt.Sprintf("col%d", i)
			}
			typ = exec.TypeFloat
		}
		fields = append(fields, exec.Field{Name: name, Type: typ})
	}
	return &ProjectPlan{Items: items, Child: child, schema: exec.NewSchema(fields...)}, nil
}

// analysisOutputSchema defines the result schema of each analysis
// operation.
func analysisOutputSchema(name string, input *exec.Schema) (*exec.Schema, error) {
	switch name {
	case "st_trajnoisefilter", "st_trajsegmentation":
		return input, nil // trajectory rows in, trajectory rows out
	case "st_trajstaypoint":
		return exec.NewSchema(
			exec.Field{Name: "tid", Type: exec.TypeString},
			exec.Field{Name: "center", Type: exec.TypeGeometry},
			exec.Field{Name: "arrive_time", Type: exec.TypeTime},
			exec.Field{Name: "depart_time", Type: exec.TypeTime},
			exec.Field{Name: "point_count", Type: exec.TypeInt},
		), nil
	case "st_dbscan":
		return exec.NewSchema(
			exec.Field{Name: "cluster", Type: exec.TypeInt},
			exec.Field{Name: "geom", Type: exec.TypeGeometry},
		), nil
	default:
		return nil, fmt.Errorf("sql: unknown analysis function %q", name)
	}
}
