package sql

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"just/internal/core"
	"just/internal/exec"
	"just/internal/geom"
	"just/internal/kv"
	"just/internal/table"
)

const hourMS = int64(3600 * 1000)

func newTestSession(t *testing.T) *Session {
	t.Helper()
	e, err := core.Open(core.Config{
		Dir:     t.TempDir(),
		Workers: 4,
		Cluster: kv.ClusterOptions{Options: kv.Options{DisableWAL: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return NewSession(e, "")
}

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Execute(sql)
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return res
}

// --- Parser tests ---

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE pts (
		fid integer:primary key,
		name string,
		time date,
		geom point:srid=4326,
		gpsList st_series:compress=gzip|zip
	) USERDATA {'geomesa.indices.enabled':'z3'}`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if ct.Name != "pts" || len(ct.Columns) != 5 {
		t.Fatalf("parsed: %+v", ct)
	}
	if ct.Columns[0].Mods[0] != "primary key" {
		t.Fatalf("mods = %v", ct.Columns[0].Mods)
	}
	if ct.Columns[3].Mods[0] != "srid=4326" {
		t.Fatalf("mods = %v", ct.Columns[3].Mods)
	}
	if ct.Columns[4].Mods[0] != "compress=gzip" {
		t.Fatalf("mods = %v", ct.Columns[4].Mods)
	}
	if ct.UserData["geomesa.indices.enabled"] != "z3" {
		t.Fatalf("userdata = %v", ct.UserData)
	}
}

func TestParseCreateTableAsPlugin(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE traj AS trajectory`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if ct.Plugin != "trajectory" {
		t.Fatalf("plugin = %q", ct.Plugin)
	}
}

func TestParseSelectShapes(t *testing.T) {
	good := []string{
		`SELECT * FROM t`,
		`SELECT a, b AS c FROM t WHERE a = 1`,
		`SELECT a FROM t WHERE geom WITHIN st_makeMBR(1,2,3,4) AND time BETWEEN 5 AND 6`,
		`SELECT a FROM (SELECT * FROM t) sub WHERE a > 2 ORDER BY b DESC LIMIT 10`,
		`SELECT count(*), sum(x) FROM t GROUP BY g`,
		`SELECT fid FROM t WHERE geom IN st_KNN(st_makePoint(116.4, 39.9), 50)`,
		`SELECT st_WGS84ToGCJ02(lng, lat) FROM t`,
		`SELECT a FROM t WHERE NOT (a = 1 OR b = 2)`,
	}
	for _, q := range good {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v", q, err)
		}
	}
	bad := []string{
		``, `SELECT`, `SELECT FROM t`, `SELECT a FROM`, `SELECT a FROM t WHERE`,
		`CREATE`, `DROP`, `SELECT a FROM t LIMIT x`, `SELECT a b c FROM t`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3`)
	if err != nil {
		t.Fatal(err)
	}
	where := stmt.(*SelectStmt).Where.(*BinaryExpr)
	if where.Op != "OR" {
		t.Fatalf("top op = %s, want OR (AND binds tighter)", where.Op)
	}
	stmt2, _ := Parse(`SELECT a FROM t WHERE x = 1 + 2 * 3`)
	cmp := stmt2.(*SelectStmt).Where.(*BinaryExpr)
	sum := cmp.R.(*BinaryExpr)
	if sum.Op != "+" {
		t.Fatalf("rhs op = %s", sum.Op)
	}
	if sum.R.(*BinaryExpr).Op != "*" {
		t.Fatal("* should bind tighter than +")
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse(`INSERT INTO t VALUES (1, 'a', st_makePoint(1,2)), (2, 'b', st_makePoint(3,4))`)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("insert = %+v", ins)
	}
}

func TestParseLoad(t *testing.T) {
	stmt, err := Parse(`LOAD hive:db.orders TO geomesa:orders CONFIG {
		'fid': 'trajId',
		'time': 'long_to_date_ms(timestamp)',
		'geom': 'lng_lat_to_point(lng, lat)'
	} FILTER 'trajId = "1068" limit 10'`)
	if err != nil {
		t.Fatal(err)
	}
	ld := stmt.(*LoadStmt)
	if ld.SrcKind != "hive" || ld.Src != "db.orders" || ld.Dst != "orders" {
		t.Fatalf("load = %+v", ld)
	}
	if len(ld.Config) != 3 || ld.Filter == "" {
		t.Fatalf("config = %v filter = %q", ld.Config, ld.Filter)
	}
}

// --- Optimizer tests ---

func TestConstantFolding(t *testing.T) {
	e, err := ParseExpr(`52 * 9`)
	if err != nil {
		t.Fatal(err)
	}
	folded := foldExpr(e)
	lit, ok := folded.(*Literal)
	if !ok || lit.Val != int64(468) {
		t.Fatalf("folded = %v", exprString(folded))
	}
	e2, _ := ParseExpr(`st_makeMBR(1, 2, 3, 4)`)
	folded2 := foldExpr(e2)
	lit2, ok := folded2.(*Literal)
	if !ok {
		t.Fatalf("MBR not folded: %v", exprString(folded2))
	}
	if _, ok := lit2.Val.(geom.MBR); !ok {
		t.Fatalf("folded value = %T", lit2.Val)
	}
}

func setupPointTable(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE pts (
		fid integer:primary key,
		name string,
		time date,
		geom point:srid=4326
	)`)
	var rows []string
	for i := 0; i < 200; i++ {
		rows = append(rows, fmt.Sprintf("(%d, 'r%d', %d, st_makePoint(%g, %g))",
			i, i, int64(i)*hourMS/4, 116.0+float64(i%20)*0.01, 39.0+float64(i/20)*0.01))
	}
	mustExec(t, s, "INSERT INTO pts VALUES "+strings.Join(rows, ", "))
}

func TestPushdownPlanShape(t *testing.T) {
	s := newTestSession(t)
	setupPointTable(t, s)
	res := mustExec(t, s, `SELECT name, geom
		FROM (SELECT * FROM pts) t
		WHERE fid = 52 * 9 AND geom WITHIN st_makeMBR(116.0, 39.0, 116.1, 39.1)
		ORDER BY time`)
	ps := PlanString(res.Plan)
	if !strings.Contains(ps, "window=") {
		t.Fatalf("window not pushed down:\n%s", ps)
	}
	if !strings.Contains(ps, "fid=468") {
		t.Fatalf("constant not folded / fid lookup not pushed:\n%s", ps)
	}
	if !strings.Contains(ps, "cols=") {
		t.Fatalf("projection not pruned:\n%s", ps)
	}
	// The pruned columns must include ORDER BY's time and residual's fid.
	if !strings.Contains(ps, "fid") || !strings.Contains(ps, "time") {
		t.Fatalf("needed columns missing:\n%s", ps)
	}
}

// --- End-to-end SQL tests ---

func TestEndToEndDDL(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE pts (fid integer:primary key, geom point)`)
	res := mustExec(t, s, `SHOW TABLES`)
	if res.Frame.Count() != 1 {
		t.Fatalf("SHOW TABLES = %d rows", res.Frame.Count())
	}
	res = mustExec(t, s, `DESC TABLE pts`)
	if res.Frame.Count() != 2 {
		t.Fatalf("DESC = %d rows", res.Frame.Count())
	}
	mustExec(t, s, `DROP TABLE pts`)
	res = mustExec(t, s, `SHOW TABLES`)
	if res.Frame.Count() != 0 {
		t.Fatal("table not dropped")
	}
	if _, err := s.Execute(`CREATE TABLE pts (fid integer:primary key, geom point) USERDATA {'geomesa.indices.enabled':'warp'}`); err == nil {
		t.Fatal("bad index strategy should fail")
	}
}

func TestEndToEndSpatialQuery(t *testing.T) {
	s := newTestSession(t)
	setupPointTable(t, s)
	res := mustExec(t, s, `SELECT fid, name, geom FROM pts
		WHERE geom WITHIN st_makeMBR(115.995, 38.995, 116.055, 39.015)`)
	// Grid: lng 116.00-116.05 (6 cols), lat 39.00-39.01 (2 rows) = 12.
	if res.Frame.Count() != 12 {
		t.Fatalf("spatial query = %d rows, want 12", res.Frame.Count())
	}
	if res.Frame.Schema().Len() != 3 {
		t.Fatalf("schema = %v", res.Frame.Schema().Names())
	}
}

func TestEndToEndSTQuery(t *testing.T) {
	s := newTestSession(t)
	setupPointTable(t, s)
	res := mustExec(t, s, `SELECT fid FROM pts
		WHERE geom WITHIN st_makeMBR(115, 38, 117, 41)
		AND time BETWEEN 0 AND `+fmt.Sprint(10*hourMS))
	if res.Frame.Count() != 41 {
		t.Fatalf("st query = %d rows, want 41", res.Frame.Count())
	}
}

func TestEndToEndTimeStrings(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE ev (fid integer:primary key, time date, geom point)`)
	mustExec(t, s, `INSERT INTO ev VALUES
		(1, '1970-01-01 01:00:00', st_makePoint(1,1)),
		(2, '1970-01-02 01:00:00', st_makePoint(1,1)),
		(3, '1970-01-03 01:00:00', st_makePoint(1,1))`)
	res := mustExec(t, s, `SELECT fid FROM ev
		WHERE geom WITHIN st_makeMBR(0,0,2,2)
		AND time BETWEEN '1970-01-01' AND '1970-01-02 12:00:00'`)
	if res.Frame.Count() != 2 {
		t.Fatalf("time-string query = %d rows, want 2", res.Frame.Count())
	}
}

func TestEndToEndKNN(t *testing.T) {
	s := newTestSession(t)
	setupPointTable(t, s)
	res := mustExec(t, s, `SELECT fid, geom FROM pts
		WHERE geom IN st_KNN(st_makePoint(116.05, 39.05), 7)`)
	if res.Frame.Count() != 7 {
		t.Fatalf("knn = %d rows, want 7", res.Frame.Count())
	}
}

func TestEndToEndAggregation(t *testing.T) {
	s := newTestSession(t)
	setupPointTable(t, s)
	res := mustExec(t, s, `SELECT name, count(*) AS n FROM pts GROUP BY name ORDER BY n DESC LIMIT 5`)
	if res.Frame.Count() != 5 {
		t.Fatalf("group = %d rows", res.Frame.Count())
	}
	res = mustExec(t, s, `SELECT count(*) AS n, min(fid) AS lo, max(fid) AS hi FROM pts`)
	row := res.Frame.Collect()[0]
	if row[0] != int64(200) || row[1] != int64(0) || row[2] != int64(199) {
		t.Fatalf("global agg = %v", row)
	}
}

func TestEndToEndGroupByComputedAlias(t *testing.T) {
	// GROUP BY over a projection alias of a computed expression — the
	// urban-block pattern: st_geohash(geom, 5) AS block ... GROUP BY block.
	s := newTestSession(t)
	setupPointTable(t, s)
	res := mustExec(t, s, `SELECT st_geohash(geom, 4) AS block, count(*) AS n
		FROM pts GROUP BY block ORDER BY n DESC`)
	rows := res.Frame.Collect()
	if len(rows) == 0 {
		t.Fatal("no groups")
	}
	total := int64(0)
	for _, r := range rows {
		if _, ok := r[0].(string); !ok {
			t.Fatalf("block = %T", r[0])
		}
		total += r[1].(int64)
	}
	if total != 200 {
		t.Fatalf("group totals = %d, want 200", total)
	}
	// Aggregates over carried columns still work.
	res = mustExec(t, s, `SELECT st_geohash(geom, 4) AS block, max(fid) AS hi
		FROM pts GROUP BY block`)
	if res.Frame.Count() == 0 {
		t.Fatal("no groups with carried agg column")
	}
}

func TestEndToEndOrderByNonProjected(t *testing.T) {
	// The paper's Fig. 8 example: ORDER BY time while projecting name,
	// geom only.
	s := newTestSession(t)
	setupPointTable(t, s)
	res := mustExec(t, s, `SELECT name, geom FROM (SELECT * FROM pts) t
		WHERE fid < 10 ORDER BY time DESC`)
	rows := res.Frame.Collect()
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "r9" || rows[9][0] != "r0" {
		t.Fatalf("order = %v ... %v", rows[0][0], rows[9][0])
	}
	if res.Frame.Schema().Len() != 2 {
		t.Fatalf("projection = %v", res.Frame.Schema().Names())
	}
}

func TestEndToEndViews(t *testing.T) {
	s := newTestSession(t)
	setupPointTable(t, s)
	mustExec(t, s, `CREATE VIEW v1 AS SELECT fid, name FROM pts WHERE fid < 20`)
	res := mustExec(t, s, `SELECT count(*) AS n FROM v1`)
	if res.Frame.Collect()[0][0] != int64(20) {
		t.Fatalf("view count = %v", res.Frame.Collect())
	}
	res = mustExec(t, s, `SHOW VIEWS`)
	if res.Frame.Count() != 1 {
		t.Fatal("SHOW VIEWS")
	}
	// Store the view into a new table (auto-created).
	mustExec(t, s, `STORE VIEW v1 TO TABLE archived`)
	res = mustExec(t, s, `SELECT count(*) AS n FROM archived`)
	if res.Frame.Collect()[0][0] != int64(20) {
		t.Fatal("stored table count")
	}
	mustExec(t, s, `DROP VIEW v1`)
	if _, err := s.Execute(`SELECT * FROM v1`); err == nil {
		t.Fatal("dropped view still queryable")
	}
}

func TestEndToEndCoordinateTransform(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE p (fid integer:primary key, lng double, lat double, geom point)`)
	mustExec(t, s, `INSERT INTO p VALUES (1, 116.397, 39.909, st_makePoint(116.397, 39.909))`)
	res := mustExec(t, s, `SELECT st_WGS84ToGCJ02(lng, lat) AS g FROM p`)
	g := res.Frame.Collect()[0][0].(geom.Point)
	if g.Lng == 116.397 && g.Lat == 39.909 {
		t.Fatal("transform did not move the point")
	}
}

func TestEndToEndTrajectoryAnalysis(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE traj AS trajectory`)
	// Insert trajectories through the Go API (st_series has no SQL
	// literal), then run the 1-N operators via SQL.
	eng := s.engine
	var rows []exec.Row
	for i := 0; i < 5; i++ {
		var pts []geom.TPoint
		tms := int64(i) * hourMS
		for j := 0; j < 30; j++ {
			pts = append(pts, geom.TPoint{
				Point: geom.Point{Lng: 116.0 + float64(j)*1e-4, Lat: 39.9},
				T:     tms,
			})
			tms += 5000
			if j == 14 {
				tms += hourMS // a big gap mid-trajectory
			}
		}
		// One noisy point.
		pts[5].Lng += 0.5
		tr := &table.Trajectory{ID: fmt.Sprintf("t%d", i), Points: pts}
		row, err := tr.Row()
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	if err := eng.BulkInsert("", "traj", rows); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, s, `SELECT st_trajNoiseFilter(item) FROM traj`)
	if res.Frame.Count() != 5 {
		t.Fatalf("noise filter rows = %d", res.Frame.Count())
	}
	for _, r := range res.Frame.Collect() {
		tr, err := table.TrajectoryFromRow(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Points) != 29 {
			t.Fatalf("filtered points = %d, want 29", len(tr.Points))
		}
	}
	res = mustExec(t, s, `SELECT st_trajSegmentation(item, 10) FROM traj`)
	if res.Frame.Count() != 10 { // each trajectory splits in two
		t.Fatalf("segments = %d, want 10", res.Frame.Count())
	}
}

func TestEndToEndDBSCAN(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE p (fid integer:primary key, geom point)`)
	var rows []string
	id := 0
	for i := 0; i < 30; i++ {
		rows = append(rows, fmt.Sprintf("(%d, st_makePoint(%g, %g))", id, 116.0+float64(i%6)*0.0001, 39.9+float64(i/6)*0.0001))
		id++
	}
	for i := 0; i < 30; i++ {
		rows = append(rows, fmt.Sprintf("(%d, st_makePoint(%g, %g))", id, 120.0+float64(i%6)*0.0001, 30.0+float64(i/6)*0.0001))
		id++
	}
	mustExec(t, s, "INSERT INTO p VALUES "+strings.Join(rows, ","))
	res := mustExec(t, s, `SELECT st_DBSCAN(geom, 5, 0.01) FROM p`)
	clusters := map[int64]int{}
	for _, r := range res.Frame.Collect() {
		clusters[r[0].(int64)]++
	}
	if len(clusters) != 2 || clusters[0] != 30 || clusters[1] != 30 {
		t.Fatalf("clusters = %v", clusters)
	}
}

func TestEndToEndLoadCSV(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE orders (fid integer:primary key, time date, geom point)`)
	csvPath := filepath.Join(t.TempDir(), "orders.csv")
	content := "orderId,ts,lng,lat\n"
	for i := 0; i < 50; i++ {
		content += fmt.Sprintf("%d,%d,%g,%g\n", i, int64(i)*hourMS, 116.0+float64(i)*0.001, 39.9)
	}
	if err := os.WriteFile(csvPath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, fmt.Sprintf(`LOAD csv:'%s' TO geomesa:orders CONFIG {
		'fid': 'orderId',
		'time': 'long_to_date_ms(ts)',
		'geom': 'lng_lat_to_point(lng, lat)'
	}`, csvPath))
	res := mustExec(t, s, `SELECT count(*) AS n FROM orders`)
	if res.Frame.Collect()[0][0] != int64(50) {
		t.Fatalf("loaded = %v", res.Frame.Collect())
	}
	// With FILTER and limit.
	mustExec(t, s, `CREATE TABLE orders2 (fid integer:primary key, time date, geom point)`)
	mustExec(t, s, fmt.Sprintf(`LOAD csv:'%s' TO geomesa:orders2 CONFIG {
		'fid': 'orderId', 'time': 'long_to_date_ms(ts)', 'geom': 'lng_lat_to_point(lng, lat)'
	} FILTER 'orderId >= 10 limit 5'`, csvPath))
	res = mustExec(t, s, `SELECT count(*) AS n FROM orders2`)
	if res.Frame.Collect()[0][0] != int64(5) {
		t.Fatalf("filtered load = %v", res.Frame.Collect())
	}
}

func TestEndToEndLoadGeoJSON(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE poi (fid integer:primary key, name string, geom point)`)
	path := filepath.Join(t.TempDir(), "poi.geojson")
	doc := `{
	  "type": "FeatureCollection",
	  "features": [
	    {"type": "Feature", "properties": {"id": 1, "name": "Tiananmen"},
	     "geometry": {"type": "Point", "coordinates": [116.3913, 39.9075]}},
	    {"type": "Feature", "properties": {"id": 2, "name": "JD HQ"},
	     "geometry": {"type": "Point", "coordinates": [116.4960, 39.7916]}},
	    {"type": "Feature", "properties": {"id": 3, "name": "Far away"},
	     "geometry": {"type": "Point", "coordinates": [-70.0, -30.0]}}
	  ]
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, fmt.Sprintf(`LOAD geojson:'%s' TO geomesa:poi CONFIG {
		'fid': 'id', 'name': 'name', 'geom': 'geometry'
	}`, path))
	res := mustExec(t, s, `SELECT name FROM poi
		WHERE geom WITHIN st_makeMBR(116, 39, 117, 40) ORDER BY name`)
	rows := res.Frame.Collect()
	if len(rows) != 2 || rows[0][0] != "JD HQ" || rows[1][0] != "Tiananmen" {
		t.Fatalf("geojson rows = %v", rows)
	}
	// Non-point geometries load too.
	mustExec(t, s, `CREATE TABLE zones (fid integer:primary key, geom polygon)`)
	zonePath := filepath.Join(t.TempDir(), "zones.geojson")
	zoneDoc := `{"type":"FeatureCollection","features":[
	  {"type":"Feature","properties":{"id":1},
	   "geometry":{"type":"Polygon","coordinates":[[[116,39],[117,39],[117,40],[116,40],[116,39]]]}}
	]}`
	if err := os.WriteFile(zonePath, []byte(zoneDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, fmt.Sprintf(`LOAD geojson:'%s' TO geomesa:zones CONFIG {'fid':'id','geom':'geometry'}`, zonePath))
	res = mustExec(t, s, `SELECT count(*) AS n FROM zones`)
	if res.Frame.Collect()[0][0] != int64(1) {
		t.Fatal("polygon feature not loaded")
	}
}

func TestUserNamespaces(t *testing.T) {
	e, err := core.Open(core.Config{
		Dir: t.TempDir(), Workers: 2,
		Cluster: kv.ClusterOptions{Options: kv.Options{DisableWAL: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	alice := NewSession(e, "alice")
	bob := NewSession(e, "bob")
	mustExec(t, alice, `CREATE TABLE t1 (fid integer:primary key, geom point)`)
	mustExec(t, bob, `CREATE TABLE t1 (fid integer:primary key, geom point)`)
	mustExec(t, alice, `INSERT INTO t1 VALUES (1, st_makePoint(1,1))`)
	resA := mustExec(t, alice, `SELECT count(*) AS n FROM t1`)
	resB := mustExec(t, bob, `SELECT count(*) AS n FROM t1`)
	if resA.Frame.Collect()[0][0] != int64(1) || resB.Frame.Collect()[0][0] != int64(0) {
		t.Fatalf("namespace leak: alice=%v bob=%v", resA.Frame.Collect(), resB.Frame.Collect())
	}
}

func TestEndToEndJoin(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE stations (sid integer:primary key, sname string, geom point)`)
	mustExec(t, s, `CREATE TABLE readings (rid integer:primary key, station integer, value double, geom point)`)
	mustExec(t, s, `INSERT INTO stations VALUES
		(1, 'alpha', st_makePoint(116.1, 39.1)),
		(2, 'beta',  st_makePoint(116.2, 39.2))`)
	mustExec(t, s, `INSERT INTO readings VALUES
		(10, 1, 5.0, st_makePoint(116.1, 39.1)),
		(11, 1, 7.0, st_makePoint(116.1, 39.1)),
		(12, 2, 9.0, st_makePoint(116.2, 39.2)),
		(13, 9, 1.0, st_makePoint(116.3, 39.3))`)
	res := mustExec(t, s, `SELECT sname, value FROM readings
		JOIN stations ON station = sid ORDER BY value`)
	rows := res.Frame.Collect()
	if len(rows) != 3 {
		t.Fatalf("join rows = %v", rows)
	}
	if rows[0][0] != "alpha" || rows[0][1] != 5.0 || rows[2][0] != "beta" {
		t.Fatalf("join content = %v", rows)
	}
	// LEFT JOIN keeps the unmatched reading.
	res = mustExec(t, s, `SELECT rid, sname FROM readings
		LEFT JOIN stations ON station = sid`)
	if res.Frame.Count() != 4 {
		t.Fatalf("left join rows = %d", res.Frame.Count())
	}
	var unmatched exec.Row
	for _, r := range res.Frame.Collect() {
		if r[0] == int64(13) {
			unmatched = r
		}
	}
	if unmatched == nil || unmatched[1] != nil {
		t.Fatalf("unmatched row = %v", unmatched)
	}
	// Join + aggregation composes.
	res = mustExec(t, s, `SELECT sname, avg(value) AS mean FROM readings
		JOIN stations ON station = sid GROUP BY sname ORDER BY sname`)
	rows = res.Frame.Collect()
	if len(rows) != 2 || rows[0][1] != 6.0 || rows[1][1] != 9.0 {
		t.Fatalf("join+agg = %v", rows)
	}
	// Unresolvable keys fail cleanly.
	if _, err := s.Execute(`SELECT * FROM readings JOIN stations ON nope = sid`); err == nil {
		t.Fatal("bad join key should fail")
	}
}

func TestQueryMemoryAccounting(t *testing.T) {
	s := newTestSession(t)
	setupPointTable(t, s)
	before := s.engine.Context().MemUsed()
	res := mustExec(t, s, `SELECT name FROM pts WHERE fid < 50 ORDER BY fid`)
	res.Frame.Release()
	after := s.engine.Context().MemUsed()
	if after != before {
		t.Fatalf("query leaked %d bytes (before=%d after=%d)", after-before, before, after)
	}
}

func TestNonSpatialTable(t *testing.T) {
	// Pure relational tables (no geometry) fall back to attribute-index
	// scans and still support the full SQL surface.
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE kv (fid integer:primary key, v string)`)
	mustExec(t, s, `INSERT INTO kv VALUES (1, 'a'), (2, 'b'), (3, 'a')`)
	res := mustExec(t, s, `SELECT v, count(*) AS n FROM kv GROUP BY v ORDER BY n DESC`)
	rows := res.Frame.Collect()
	if len(rows) != 2 || rows[0][0] != "a" || rows[0][1] != int64(2) {
		t.Fatalf("rows = %v", rows)
	}
	res = mustExec(t, s, `SELECT v FROM kv WHERE fid = 2`)
	if res.Frame.Count() != 1 || res.Frame.Collect()[0][0] != "b" {
		t.Fatalf("point lookup = %v", res.Frame.Collect())
	}
}

func TestFIDPointLookup(t *testing.T) {
	s := newTestSession(t)
	setupPointTable(t, s)
	res := mustExec(t, s, `SELECT name FROM pts WHERE fid = 42`)
	ps := PlanString(res.Plan)
	if !strings.Contains(ps, "fid=42") {
		t.Fatalf("fid lookup not pushed:\n%s", ps)
	}
	rows := res.Frame.Collect()
	if len(rows) != 1 || rows[0][0] != "r42" {
		t.Fatalf("rows = %v", rows)
	}
	// Missing fid returns empty, not an error.
	res = mustExec(t, s, `SELECT name FROM pts WHERE fid = 99999`)
	if res.Frame.Count() != 0 {
		t.Fatal("missing fid should return no rows")
	}
	// fid lookup composes with other predicates.
	res = mustExec(t, s, `SELECT name FROM pts WHERE fid = 42 AND name = 'nope'`)
	if res.Frame.Count() != 0 {
		t.Fatal("residual predicate should filter the looked-up row")
	}
	res = mustExec(t, s, `SELECT name FROM pts
		WHERE fid = 42 AND geom WITHIN st_makeMBR(0, 0, 1, 1)`)
	if res.Frame.Count() != 0 {
		t.Fatal("window should filter the looked-up row")
	}
}

func TestParseJoin(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t1 x JOIN t2 y ON x.k = y.k WHERE a > 1`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*SelectStmt)
	if sel.Join == nil || sel.Join.LeftCol != "k" || sel.Join.RightCol != "k" {
		t.Fatalf("join = %+v", sel.Join)
	}
	if sel.Join.Left {
		t.Fatal("inner join misparsed as left")
	}
	stmt, err = Parse(`SELECT a FROM t1 LEFT JOIN (SELECT * FROM t3) s ON k1 = k2`)
	if err != nil {
		t.Fatal(err)
	}
	sel = stmt.(*SelectStmt)
	if !sel.Join.Left || sel.Join.Right.Subquery == nil {
		t.Fatalf("left join = %+v", sel.Join)
	}
	if _, err := Parse(`SELECT a FROM t1 JOIN t2`); err == nil {
		t.Fatal("JOIN without ON should fail")
	}
}

func TestExplain(t *testing.T) {
	s := newTestSession(t)
	setupPointTable(t, s)
	res := mustExec(t, s, `EXPLAIN SELECT name FROM pts
		WHERE geom WITHIN st_makeMBR(116, 39, 117, 40) AND fid < 10`)
	if res.Frame != nil {
		t.Fatal("EXPLAIN should not execute the query")
	}
	if !strings.Contains(res.Message, "Scan[pts") || !strings.Contains(res.Message, "window=") {
		t.Fatalf("explain output:\n%s", res.Message)
	}
}

func TestSelectErrors(t *testing.T) {
	s := newTestSession(t)
	setupPointTable(t, s)
	bad := []string{
		`SELECT nope FROM pts`,
		`SELECT * FROM missing`,
		`SELECT name, count(*) FROM pts`, // name not grouped
		`SELECT st_nosuchfunc(fid) FROM pts`,
		`SELECT fid FROM pts WHERE name`, // non-boolean where
	}
	for _, q := range bad {
		if _, err := s.Execute(q); err == nil {
			t.Errorf("Execute(%q) should fail", q)
		}
	}
}

// TestProjectionWithResidualPredicate pins the projection-pushdown
// contract: a residual predicate referencing a column outside the
// SELECT list must still see that column decoded.
func TestProjectionWithResidualPredicate(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE pts (fid integer:primary key, name string, time date, geom point)`)
	for i := 0; i < 20; i++ {
		mustExec(t, s, fmt.Sprintf(
			`INSERT INTO pts VALUES (%d, 'n%d', %d, st_makePoint(116.%02d, 39.9))`,
			i, i%3, i*1000, i))
	}
	res := mustExec(t, s, `SELECT fid FROM pts WHERE name = 'n1'`)
	rows := res.Frame.Collect()
	if len(rows) == 0 {
		t.Fatal("residual over non-projected column found nothing")
	}
	for _, r := range rows {
		if len(r) != 1 {
			t.Fatalf("projected row has %d columns: %v", len(r), r)
		}
		if r[0].(int64)%3 != 1 {
			t.Fatalf("row %v fails the residual predicate", r)
		}
	}
	res.Frame.Release()
}
