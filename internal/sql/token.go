// Package sql implements the JustQL engine (Section VI): a lexer, a
// recursive-descent parser, an analyzer backed by the meta table, a
// rule-based optimizer (constant folding, predicate pushdown, projection
// pruning), and an executor that lowers spatio-temporal predicates to
// index scans and everything else to DataFrame operators.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp   // punctuation and operators
	tokJSON // balanced {...} blob (after USERDATA / CONFIG)
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes JustQL. Keywords are case-insensitive and reported as
// upper-cased idents.
type lexer struct {
	src  string
	pos  int
	toks []token
	i    int
}

func newLexer(src string) (*lexer, error) {
	l := &lexer{src: src}
	if err := l.run(); err != nil {
		return nil, err
	}
	return l, nil
}

// ErrSyntax wraps lexical and grammatical errors.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sql: syntax error at offset %d: %s", e.Pos, e.Msg)
}

func (l *lexer) run() error {
	s := l.src
	for l.pos < len(s) {
		c := s[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(s) && s[l.pos+1] == '-':
			for l.pos < len(s) && s[l.pos] != '\n' {
				l.pos++
			}
		case c == '{':
			start := l.pos
			blob, err := l.captureBalanced()
			if err != nil {
				return err
			}
			l.toks = append(l.toks, token{tokJSON, blob, start})
		case c == '\'' || c == '"':
			start := l.pos
			quote := c
			l.pos++
			var sb strings.Builder
			for l.pos < len(s) && s[l.pos] != quote {
				if s[l.pos] == '\\' && l.pos+1 < len(s) {
					l.pos++
				}
				sb.WriteByte(s[l.pos])
				l.pos++
			}
			if l.pos >= len(s) {
				return &SyntaxError{start, "unterminated string"}
			}
			l.pos++ // closing quote
			l.toks = append(l.toks, token{tokString, sb.String(), start})
		case c >= '0' && c <= '9' || (c == '.' && l.pos+1 < len(s) && s[l.pos+1] >= '0' && s[l.pos+1] <= '9'):
			start := l.pos
			for l.pos < len(s) && (isDigit(s[l.pos]) || s[l.pos] == '.' || s[l.pos] == 'e' || s[l.pos] == 'E' ||
				((s[l.pos] == '+' || s[l.pos] == '-') && l.pos > start && (s[l.pos-1] == 'e' || s[l.pos-1] == 'E'))) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokNumber, s[start:l.pos], start})
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(s) && isIdentPart(rune(s[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokIdent, s[start:l.pos], start})
		default:
			start := l.pos
			// Two-char operators first.
			if l.pos+1 < len(s) {
				two := s[l.pos : l.pos+2]
				switch two {
				case "<=", ">=", "!=", "<>", "::":
					l.toks = append(l.toks, token{tokOp, two, start})
					l.pos += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', ';', ':', '=', '<', '>', '+', '-', '*', '/', '.', '|':
				l.toks = append(l.toks, token{tokOp, string(c), start})
				l.pos++
			default:
				return &SyntaxError{start, fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", len(s)})
	return nil
}

// captureBalanced consumes a balanced {...} blob, respecting quoted
// strings inside.
func (l *lexer) captureBalanced() (string, error) {
	s := l.src
	start := l.pos
	depth := 0
	for l.pos < len(s) {
		switch s[l.pos] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				l.pos++
				return s[start:l.pos], nil
			}
		case '\'', '"':
			quote := s[l.pos]
			l.pos++
			for l.pos < len(s) && s[l.pos] != quote {
				if s[l.pos] == '\\' {
					l.pos++
				}
				l.pos++
			}
		}
		l.pos++
	}
	return "", &SyntaxError{start, "unterminated { ... } block"}
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

// peek returns the current token without consuming it.
func (l *lexer) peek() token { return l.toks[l.i] }

// next consumes and returns the current token.
func (l *lexer) next() token {
	t := l.toks[l.i]
	if l.i < len(l.toks)-1 {
		l.i++
	}
	return t
}

// matchKeyword consumes the token if it is the given keyword
// (case-insensitive).
func (l *lexer) matchKeyword(kw string) bool {
	t := l.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		l.next()
		return true
	}
	return false
}

// expectKeyword consumes a required keyword.
func (l *lexer) expectKeyword(kw string) error {
	if !l.matchKeyword(kw) {
		t := l.peek()
		return &SyntaxError{t.pos, fmt.Sprintf("expected %s, got %q", kw, t.text)}
	}
	return nil
}

// matchOp consumes the token if it is the given operator.
func (l *lexer) matchOp(op string) bool {
	t := l.peek()
	if t.kind == tokOp && t.text == op {
		l.next()
		return true
	}
	return false
}

// expectOp consumes a required operator.
func (l *lexer) expectOp(op string) error {
	if !l.matchOp(op) {
		t := l.peek()
		return &SyntaxError{t.pos, fmt.Sprintf("expected %q, got %q", op, t.text)}
	}
	return nil
}

// expectIdent consumes a required identifier.
func (l *lexer) expectIdent() (string, error) {
	t := l.peek()
	if t.kind != tokIdent {
		return "", &SyntaxError{t.pos, fmt.Sprintf("expected identifier, got %q", t.text)}
	}
	l.next()
	return t.text, nil
}

// isKeyword reports whether the current token equals the keyword without
// consuming it.
func (l *lexer) isKeyword(kw string) bool {
	t := l.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
