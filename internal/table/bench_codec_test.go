package table

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"just/internal/exec"
	"just/internal/geom"
	"just/internal/index"
	"just/internal/kv"
)

// The codec-dimension benchmarks rerun the columnar scan and batched
// ingest workloads under each block codec (none / gzip / lz4) so one
// `go test -bench Codec` run produces the compression section of the
// bench report: rows/s per codec plus the on-disk bytes per row
// ("disk_B/row") that shows what each codec's ratio buys.

var benchCodecs = []string{"none", "gzip", "lz4"}

func codecBenchOptions(codec string) kv.ClusterOptions {
	o := benchClusterOptions()
	o.Options.Codec = codec
	return o
}

var (
	codecBenchMu     sync.Mutex
	codecBenchTables = map[string]*Table{}
	codecBenchSizes  = map[string]int64{}
)

const codecBenchCount = 20000

// codecBenchTable builds (once per codec) the zone-fixture-shaped order
// table — sequential fids, time correlated with key order, 500 distinct
// riders — flushed to SSTables under the requested block codec.
func codecBenchTable(b *testing.B, codec string) (*Table, int64) {
	b.Helper()
	codecBenchMu.Lock()
	defer codecBenchMu.Unlock()
	if tbl, ok := codecBenchTables[codec]; ok {
		return tbl, codecBenchSizes[codec]
	}
	dir, err := os.MkdirTemp("", "just-bench-codec-"+codec+"-")
	if err != nil {
		b.Fatal(err)
	}
	cluster, err := kv.OpenCluster(dir, codecBenchOptions(codec))
	if err != nil {
		b.Fatal(err)
	}
	cat, _ := OpenCatalog("")
	d := &Desc{
		Name: "corders", Kind: KindCommon,
		Columns: []Column{
			{Name: "fid", Type: exec.TypeInt, PrimaryKey: true},
			{Name: "time", Type: exec.TypeTime},
			{Name: "geom", Type: exec.TypeGeometry, Subtype: "point"},
			{Name: "rider", Type: exec.TypeString},
			{Name: "fee", Type: exec.TypeFloat},
		},
		Indexes:   []IndexDesc{{Strategy: "attr", ID: 0}},
		FidColumn: "fid", GeomColumn: "geom", TimeColumn: "time",
	}
	if err := cat.Create(d); err != nil {
		b.Fatal(err)
	}
	tbl, err := Open(d, cluster, IndexConfig{Shards: 2, Period: 24 * time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	step := float64(benchDayMS) / codecBenchCount
	for i := 0; i < codecBenchCount; i++ {
		row := exec.Row{
			int64(i),
			int64(float64(i) * step),
			geom.Point{Lng: 116.0 + rng.Float64(), Lat: 39.5 + rng.Float64()},
			fmt.Sprintf("rider-%04d", rng.Intn(500)),
			rng.Float64() * 30,
		}
		if err := tbl.Insert(row); err != nil {
			b.Fatal(err)
		}
	}
	if err := cluster.Flush(); err != nil {
		b.Fatal(err)
	}
	d.MinTimeMS, d.MaxTimeMS = 0, benchDayMS
	codecBenchTables[codec] = tbl
	codecBenchSizes[codec] = cluster.DiskSize()
	return tbl, codecBenchSizes[codec]
}

// BenchmarkScanPipelineColumnarCodec: the columnar scan over a 2-hour
// time slice of the order fixture, per block codec. Decompression speed
// dominates the delta between gzip and lz4; "none" bounds what zero
// codec cost would buy.
func BenchmarkScanPipelineColumnarCodec(b *testing.B) {
	for _, codec := range benchCodecs {
		b.Run(codec, func(b *testing.B) {
			tbl, disk := codecBenchTable(b, codec)
			q := index.Query{
				Window:  geom.WorldMBR,
				HasTime: true,
				TMin:    10 * 3600 * 1000,
				TMax:    12 * 3600 * 1000,
			}
			b.ResetTimer()
			rows := 0
			for i := 0; i < b.N; i++ {
				rows = 0
				if err := tbl.ScanBatches(context.Background(), q, nil, func(cb *exec.ColumnBatch) bool {
					rows += cb.Len()
					return true
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if rows == 0 {
				b.Fatal("query matched nothing")
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
			b.ReportMetric(float64(disk)/codecBenchCount, "disk_B/row")
		})
	}
}

// BenchmarkIngestOrderBatchedCodec: the batched ingest workload per
// block codec — compression speed shows up in the flush cost each
// iteration pays.
func BenchmarkIngestOrderBatchedCodec(b *testing.B) {
	rows := ingestOrderRows(b)
	for _, codec := range benchCodecs {
		b.Run(codec, func(b *testing.B) {
			mk := func(b *testing.B) (*Table, *kv.Cluster) {
				b.Helper()
				cluster, err := kv.OpenCluster(b.TempDir(), codecBenchOptions(codec))
				if err != nil {
					b.Fatal(err)
				}
				cat, _ := OpenCatalog("")
				d := &Desc{
					Name: "orders", Kind: KindCommon,
					Columns: []Column{
						{Name: "fid", Type: exec.TypeInt, PrimaryKey: true},
						{Name: "time", Type: exec.TypeTime},
						{Name: "geom", Type: exec.TypeGeometry, Subtype: "point"},
						{Name: "rider", Type: exec.TypeString},
						{Name: "fee", Type: exec.TypeFloat},
					},
					Indexes: []IndexDesc{
						{Strategy: "attr", ID: 0},
						{Strategy: "z2t", ID: 1},
					},
					FidColumn: "fid", GeomColumn: "geom", TimeColumn: "time",
				}
				if err := cat.Create(d); err != nil {
					b.Fatal(err)
				}
				tbl, err := Open(d, cluster, IndexConfig{Shards: 2, Period: 24 * time.Hour})
				if err != nil {
					b.Fatal(err)
				}
				return tbl, cluster
			}
			runIngestBench(b, rows, mk, insertBatched)
		})
	}
}
