package table

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"just/internal/exec"
	"just/internal/geom"
	"just/internal/index"
	"just/internal/kv"
)

// runTrajBenchColumnar drives the batch-emitting scan directly: rows
// are counted off the column vectors and never boxed.
func runTrajBenchColumnar(b *testing.B, needed []bool) {
	tbl, err := trajBenchTable()
	if err != nil {
		b.Fatal(err)
	}
	q := benchTrajQuery()
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		rows = 0
		if err := tbl.ScanBatches(context.Background(), q, needed, func(cb *exec.ColumnBatch) bool {
			rows += cb.Len()
			return true
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if rows == 0 {
		b.Fatal("query matched nothing")
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkScanPipelineColumnarTrajST: full columnar scan, all columns
// decoded into batches.
func BenchmarkScanPipelineColumnarTrajST(b *testing.B) {
	runTrajBenchColumnar(b, nil)
}

// BenchmarkScanPipelineColumnarTrajSTProjected: columnar scan decoding
// only the tid column for surviving rows.
func BenchmarkScanPipelineColumnarTrajSTProjected(b *testing.B) {
	needed := make([]bool, 7)
	needed[0] = true
	runTrajBenchColumnar(b, needed)
}

// BenchmarkScanPipelineColumnarOrderST: columnar scan over the plain
// point-record table.
func BenchmarkScanPipelineColumnarOrderST(b *testing.B) {
	tbl, err := orderBenchTable()
	if err != nil {
		b.Fatal(err)
	}
	q := index.Query{
		Window:  geom.NewMBR(116.2, 39.7, 116.7, 40.2),
		HasTime: true,
		TMin:    10 * 3600 * 1000,
		TMax:    14 * 3600 * 1000,
	}
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		rows = 0
		if err := tbl.ScanBatches(context.Background(), q, nil, func(cb *exec.ColumnBatch) bool {
			rows += cb.Len()
			return true
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if rows == 0 {
		b.Fatal("query matched nothing")
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

var (
	zoneBenchOnce sync.Once
	zoneBenchTbl  *Table
	zoneBenchErr  error
)

const zoneBenchCount = 60000

// zoneBenchTable is the zone-map pruning fixture: an attribute-only
// order table whose event time grows with the sequential fid, so the
// attribute index's key order correlates with time and SSTable blocks
// carry tight time zones. A narrow time window then proves most blocks
// irrelevant before they are read or decompressed.
func zoneBenchTable() (*Table, error) {
	zoneBenchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "just-bench-zone-")
		if err != nil {
			zoneBenchErr = err
			return
		}
		cluster, err := kv.OpenCluster(dir, benchClusterOptions())
		if err != nil {
			zoneBenchErr = err
			return
		}
		cat, _ := OpenCatalog("")
		d := &Desc{
			Name: "zorders", Kind: KindCommon,
			Columns: []Column{
				{Name: "fid", Type: exec.TypeInt, PrimaryKey: true},
				{Name: "time", Type: exec.TypeTime},
				{Name: "geom", Type: exec.TypeGeometry, Subtype: "point"},
				{Name: "rider", Type: exec.TypeString},
				{Name: "fee", Type: exec.TypeFloat},
			},
			Indexes:   []IndexDesc{{Strategy: "attr", ID: 0}},
			FidColumn: "fid", GeomColumn: "geom", TimeColumn: "time",
		}
		if err := cat.Create(d); err != nil {
			zoneBenchErr = err
			return
		}
		tbl, err := Open(d, cluster, IndexConfig{Shards: 2, Period: 24 * time.Hour})
		if err != nil {
			zoneBenchErr = err
			return
		}
		rng := rand.New(rand.NewSource(23))
		step := float64(benchDayMS) / zoneBenchCount
		for i := 0; i < zoneBenchCount; i++ {
			row := exec.Row{
				int64(i),
				int64(float64(i) * step), // time grows with fid
				geom.Point{Lng: 116.0 + rng.Float64(), Lat: 39.5 + rng.Float64()},
				fmt.Sprintf("rider-%04d", rng.Intn(500)),
				rng.Float64() * 30,
			}
			if err := tbl.Insert(row); err != nil {
				zoneBenchErr = err
				return
			}
		}
		if err := cluster.Flush(); err != nil {
			zoneBenchErr = err
			return
		}
		d.MinTimeMS, d.MaxTimeMS = 0, benchDayMS
		zoneBenchTbl = tbl
	})
	return zoneBenchTbl, zoneBenchErr
}

// zoneBenchQuery is a 30-minute slice of the day — about 2% of the
// fixture's blocks overlap it.
func zoneBenchQuery() index.Query {
	return index.Query{
		Window:  geom.WorldMBR,
		HasTime: true,
		TMin:    10 * 3600 * 1000,
		TMax:    10*3600*1000 + 30*60*1000,
	}
}

// BenchmarkZoneMapSkip: the selective time-window scan over the
// pruning fixture; block skips are reported per iteration.
func BenchmarkZoneMapSkip(b *testing.B) {
	tbl, err := zoneBenchTable()
	if err != nil {
		b.Fatal(err)
	}
	q := zoneBenchQuery()
	before := tbl.cluster.Metrics().BlocksSkipped
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		rows = 0
		if err := tbl.ScanBatches(context.Background(), q, nil, func(cb *exec.ColumnBatch) bool {
			rows += cb.Len()
			return true
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if rows == 0 {
		b.Fatal("query matched nothing")
	}
	skipped := tbl.cluster.Metrics().BlocksSkipped - before
	if skipped == 0 {
		b.Fatal("zone maps skipped no blocks on the pruning fixture")
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	b.ReportMetric(float64(skipped)/float64(b.N), "blocks-skipped/op")
}

// BenchmarkZoneMapSkipLegacy: the identical query through the retired
// row pipeline, which plans the same attribute scan but carries no zone
// hints — every block is read and decoded. The before/after pair for
// the zone-map experiment.
func BenchmarkZoneMapSkipLegacy(b *testing.B) {
	tbl, err := zoneBenchTable()
	if err != nil {
		b.Fatal(err)
	}
	q := zoneBenchQuery()
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		rows = 0
		if err := tbl.scanRowsLegacy(context.Background(), q, nil, func(r exec.Row) bool {
			rows++
			return true
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if rows == 0 {
		b.Fatal("query matched nothing")
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// TestZoneMapPruningFixture is the CI gate for zone-map pruning: the
// selective window over the pruning fixture must skip blocks and still
// return exactly the in-window rows. It uses a small local copy of the
// fixture so `go test` stays fast.
func TestZoneMapPruningFixture(t *testing.T) {
	cluster, err := kv.OpenCluster(t.TempDir(), kv.ClusterOptions{Options: kv.Options{DisableWAL: true}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	cat, _ := OpenCatalog("")
	d := &Desc{
		Name: "zorders", Kind: KindCommon,
		Columns: []Column{
			{Name: "fid", Type: exec.TypeInt, PrimaryKey: true},
			{Name: "time", Type: exec.TypeTime},
			{Name: "geom", Type: exec.TypeGeometry, Subtype: "point"},
		},
		Indexes:   []IndexDesc{{Strategy: "attr", ID: 0}},
		FidColumn: "fid", GeomColumn: "geom", TimeColumn: "time",
	}
	if err := cat.Create(d); err != nil {
		t.Fatal(err)
	}
	tbl, err := Open(d, cluster, IndexConfig{Shards: 2, Period: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	const n = 8000
	day := int64(24 * 3600 * 1000)
	step := float64(day) / n
	for i := 0; i < n; i++ {
		row := exec.Row{
			int64(i),
			int64(float64(i) * step),
			geom.Point{Lng: 116.0 + rng.Float64(), Lat: 39.5 + rng.Float64()},
		}
		if err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := cluster.Flush(); err != nil {
		t.Fatal(err)
	}
	d.MinTimeMS, d.MaxTimeMS = 0, day

	q := index.Query{
		Window:  geom.WorldMBR,
		HasTime: true,
		TMin:    10 * 3600 * 1000,
		TMax:    11 * 3600 * 1000,
	}
	rows := 0
	if err := tbl.ScanBatches(context.Background(), q, nil, func(cb *exec.ColumnBatch) bool {
		rows += cb.Len()
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < n; i++ {
		ts := int64(float64(i) * step)
		if ts >= q.TMin && ts <= q.TMax {
			want++
		}
	}
	if rows != want {
		t.Fatalf("pruned scan returned %d rows, want %d", rows, want)
	}
	m := cluster.Metrics()
	if m.BlocksSkipped == 0 {
		t.Fatal("zone maps skipped no blocks on the pruning fixture")
	}
	t.Logf("blocks skipped: %d, batches decoded: %d", m.BlocksSkipped, m.BatchesDecoded)
}
