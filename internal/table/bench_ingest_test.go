package table

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"just/internal/exec"
	"just/internal/geom"
	"just/internal/kv"
)

// The ingest benchmarks compare the per-row seed write path (Insert:
// one cluster Put per index copy, one existence probe per row) against
// the batched group-commit path (InsertBatch: parallel encode/gzip, one
// MultiGet probe, one WriteBatch per chunk). Storage settings mirror
// the evaluation harness (benchClusterOptions): WAL off — the paper's
// bulk-ingestion configuration, and the only fair comparison, since the
// per-row seed path never syncs its WAL while the batch path syncs at
// every group-commit boundary.
func ingestClusterOptions() kv.ClusterOptions {
	return benchClusterOptions()
}

const (
	ingestTrajCount       = 1200
	ingestTrajCountShort  = 300
	ingestTrajPoints      = 200
	ingestOrderCount      = 20000
	ingestOrderCountShort = 4000
	ingestChunkRows       = 4096 // Engine.BulkInsert's chunk size
)

func ingestTrajTable(b *testing.B) (*Table, *kv.Cluster) {
	b.Helper()
	cluster, err := kv.OpenCluster(b.TempDir(), ingestClusterOptions())
	if err != nil {
		b.Fatal(err)
	}
	cat, _ := OpenCatalog("")
	d, err := NewDescFromPlugin("", "traj", "trajectory")
	if err != nil {
		b.Fatal(err)
	}
	if err := cat.Create(d); err != nil {
		b.Fatal(err)
	}
	tbl, err := Open(d, cluster, IndexConfig{Shards: 2, Period: 24 * time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	return tbl, cluster
}

func ingestTrajRows(b *testing.B) []exec.Row {
	b.Helper()
	n := ingestTrajCount
	if testing.Short() {
		n = ingestTrajCountShort
	}
	rng := rand.New(rand.NewSource(42))
	rows := make([]exec.Row, 0, n)
	for i := 0; i < n; i++ {
		lng := 116.0 + rng.Float64()
		lat := 39.5 + rng.Float64()
		t0 := int64(rng.Intn(int(benchDayMS - int64(ingestTrajPoints)*3000)))
		pts := make([]geom.TPoint, ingestTrajPoints)
		for j := range pts {
			lng += (rng.Float64() - 0.5) * 2e-4
			lat += (rng.Float64() - 0.5) * 2e-4
			pts[j] = geom.TPoint{
				Point: geom.Point{Lng: lng, Lat: lat},
				T:     t0 + int64(j)*3000,
			}
		}
		row, err := (&Trajectory{ID: fmt.Sprintf("t-%05d", i), Points: pts}).Row()
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, row)
	}
	return rows
}

func ingestOrderTable(b *testing.B) (*Table, *kv.Cluster) {
	b.Helper()
	cluster, err := kv.OpenCluster(b.TempDir(), ingestClusterOptions())
	if err != nil {
		b.Fatal(err)
	}
	cat, _ := OpenCatalog("")
	d := &Desc{
		Name: "orders", Kind: KindCommon,
		Columns: []Column{
			{Name: "fid", Type: exec.TypeInt, PrimaryKey: true},
			{Name: "time", Type: exec.TypeTime},
			{Name: "geom", Type: exec.TypeGeometry, Subtype: "point"},
			{Name: "rider", Type: exec.TypeString},
			{Name: "fee", Type: exec.TypeFloat},
		},
		Indexes: []IndexDesc{
			{Strategy: "attr", ID: 0},
			{Strategy: "z2t", ID: 1},
		},
		FidColumn: "fid", GeomColumn: "geom", TimeColumn: "time",
	}
	if err := cat.Create(d); err != nil {
		b.Fatal(err)
	}
	tbl, err := Open(d, cluster, IndexConfig{Shards: 2, Period: 24 * time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	return tbl, cluster
}

func ingestOrderRows(b *testing.B) []exec.Row {
	b.Helper()
	n := ingestOrderCount
	if testing.Short() {
		n = ingestOrderCountShort
	}
	rng := rand.New(rand.NewSource(7))
	rows := make([]exec.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, exec.Row{
			int64(i),
			int64(rng.Intn(int(benchDayMS))),
			geom.Point{Lng: 116.0 + rng.Float64(), Lat: 39.5 + rng.Float64()},
			fmt.Sprintf("rider-%04d", rng.Intn(500)),
			rng.Float64() * 30,
		})
	}
	return rows
}

// runIngestBench times inserting rows into a fresh table each iteration
// (including the final Flush, so both paths pay for reaching disk) and
// reports rows/s plus the encoded MB/s via SetBytes.
func runIngestBench(b *testing.B, rows []exec.Row, mk func(*testing.B) (*Table, *kv.Cluster), insert func(*Table, []exec.Row) error) {
	scratch, scratchCluster := mk(b)
	var encoded int64
	for _, r := range rows {
		v, err := scratch.codec.Encode(r)
		if err != nil {
			b.Fatal(err)
		}
		encoded += int64(len(v))
	}
	scratchCluster.Close()
	b.SetBytes(encoded)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tbl, cluster := mk(b)
		b.StartTimer()
		if err := insert(tbl, rows); err != nil {
			b.Fatal(err)
		}
		if err := cluster.Flush(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		cluster.Close()
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(len(rows))*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func insertSeed(t *Table, rows []exec.Row) error {
	for _, r := range rows {
		if err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

func insertBatched(t *Table, rows []exec.Row) error {
	for len(rows) > 0 {
		n := ingestChunkRows
		if n > len(rows) {
			n = len(rows)
		}
		if err := t.InsertBatch(rows[:n]); err != nil {
			return err
		}
		rows = rows[n:]
	}
	return nil
}

// BenchmarkIngestTrajSeed: per-row inserts of gzip-compressed
// trajectories into the plugin table (attr + XZ2 + XZ2T indexes).
func BenchmarkIngestTrajSeed(b *testing.B) {
	runIngestBench(b, ingestTrajRows(b), ingestTrajTable, insertSeed)
}

// BenchmarkIngestTrajBatched: the same rows through InsertBatch.
func BenchmarkIngestTrajBatched(b *testing.B) {
	runIngestBench(b, ingestTrajRows(b), ingestTrajTable, insertBatched)
}

// BenchmarkIngestOrderSeed: per-row inserts of uncompressed point rows
// (attr + Z2T indexes), the paper's order scenario.
func BenchmarkIngestOrderSeed(b *testing.B) {
	runIngestBench(b, ingestOrderRows(b), ingestOrderTable, insertSeed)
}

// BenchmarkIngestOrderBatched: the same rows through InsertBatch.
func BenchmarkIngestOrderBatched(b *testing.B) {
	runIngestBench(b, ingestOrderRows(b), ingestOrderTable, insertBatched)
}
