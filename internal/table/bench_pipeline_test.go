package table

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"just/internal/exec"
	"just/internal/geom"
	"just/internal/index"
	"just/internal/kv"
)

// The benchmarks reproduce the evaluation harness storage settings
// (internal/bench/systems.go): WAL off, 40 MB/s simulated disk, 8 MB
// block cache.
func benchClusterOptions() kv.ClusterOptions {
	return kv.ClusterOptions{
		Options: kv.Options{
			DisableWAL:         true,
			DiskThroughputMBps: 40,
			BlockCacheBytes:    8 << 20,
		},
	}
}

// seedScanQuery replicates the pre-pipeline scan path: parallel KV scan
// copying every pair into batches, with decode, gzip decompression and
// post-filter all on the single consumer goroutine. It is kept here as
// the benchmark baseline for BenchmarkScanPipeline*.
func seedScanQuery(t *Table, q index.Query, emit func(exec.Row) bool) error {
	s, indexID, ok := t.chooseStrategy(q)
	if !ok {
		panic("bench table must have an index")
	}
	planQ := q
	if s.Temporal() && !q.HasTime {
		planQ.HasTime = true
		planQ.TMin = t.Desc.MinTimeMS
		planQ.TMax = t.Desc.MaxTimeMS
	}
	ranges, err := s.Plan(planQ)
	if err != nil {
		return err
	}
	prefix := t.keyPrefix(indexID)
	full := make([]kv.KeyRange, len(ranges))
	for i, r := range ranges {
		full[i] = prefixRange(prefix, r)
	}
	var decodeErr error
	err = t.cluster.ScanRanges(context.Background(), full, func(k, v []byte) bool {
		row, err := t.codec.Decode(v)
		if err != nil {
			decodeErr = err
			return false
		}
		keep, err := t.matches(row, q)
		if err != nil {
			decodeErr = err
			return false
		}
		if !keep {
			return true
		}
		return emit(row)
	})
	if decodeErr != nil {
		return decodeErr
	}
	return err
}

var (
	trajBenchOnce sync.Once
	trajBenchTbl  *Table
	trajBenchErr  error
)

const (
	benchTrajCount  = 1500
	benchTrajPoints = 300
	benchDayMS      = int64(24 * 3600 * 1000)
)

// trajBenchTable loads a compressed trajectory table once and reuses it
// across benchmarks (the directory lives in the OS temp area for the
// life of the process).
func trajBenchTable() (*Table, error) {
	trajBenchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "just-bench-traj-")
		if err != nil {
			trajBenchErr = err
			return
		}
		cluster, err := kv.OpenCluster(dir, benchClusterOptions())
		if err != nil {
			trajBenchErr = err
			return
		}
		cat, _ := OpenCatalog("")
		d, err := NewDescFromPlugin("", "traj", "trajectory")
		if err != nil {
			trajBenchErr = err
			return
		}
		if err := cat.Create(d); err != nil {
			trajBenchErr = err
			return
		}
		tbl, err := Open(d, cluster, IndexConfig{Shards: 2, Period: 24 * time.Hour})
		if err != nil {
			trajBenchErr = err
			return
		}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < benchTrajCount; i++ {
			lng := 116.0 + rng.Float64()
			lat := 39.5 + rng.Float64()
			t0 := int64(rng.Intn(int(benchDayMS - int64(benchTrajPoints)*3000)))
			pts := make([]geom.TPoint, benchTrajPoints)
			for j := range pts {
				lng += (rng.Float64() - 0.5) * 2e-4
				lat += (rng.Float64() - 0.5) * 2e-4
				pts[j] = geom.TPoint{
					Point: geom.Point{Lng: lng, Lat: lat},
					T:     t0 + int64(j)*3000,
				}
			}
			traj := &Trajectory{ID: fmt.Sprintf("t-%05d", i), Points: pts}
			row, err := traj.Row()
			if err != nil {
				trajBenchErr = err
				return
			}
			if err := tbl.Insert(row); err != nil {
				trajBenchErr = err
				return
			}
		}
		if err := cluster.Flush(); err != nil {
			trajBenchErr = err
			return
		}
		d.MinTimeMS, d.MaxTimeMS = 0, benchDayMS
		trajBenchTbl = tbl
	})
	return trajBenchTbl, trajBenchErr
}

// benchTrajQuery is an ST range over a sub-window in space and a 2-hour
// slice of the day: the XZ2T index scans every trajectory in the
// covering period bins, so most scanned pairs are post-filtered — the
// case the in-worker filter phase accelerates by skipping their GPS
// gzip decompression.
func benchTrajQuery() index.Query {
	return index.Query{
		Window:  geom.NewMBR(116.2, 39.7, 116.7, 40.2),
		HasTime: true,
		TMin:    10 * 3600 * 1000,
		TMax:    12 * 3600 * 1000,
	}
}

func runTrajBench(b *testing.B, scan func(*Table, index.Query, func(exec.Row) bool) error, needGPS bool) {
	tbl, err := trajBenchTable()
	if err != nil {
		b.Fatal(err)
	}
	q := benchTrajQuery()
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		rows = 0
		if err := scan(tbl, q, func(r exec.Row) bool {
			if needGPS && r[6] == nil {
				b.Fatal("gps_list not decoded")
			}
			rows++
			return true
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if rows == 0 {
		b.Fatal("query matched nothing")
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkScanPipelineTrajST: the pipelined path (decode+filter inside
// scan workers, two-phase decode).
func BenchmarkScanPipelineTrajST(b *testing.B) {
	runTrajBench(b, func(t *Table, q index.Query, emit func(exec.Row) bool) error {
		return t.ScanQuery(context.Background(), q, emit)
	}, true)
}

// BenchmarkScanPipelineTrajSTSeed: the pre-pipeline baseline (copy every
// pair, decode everything on one goroutine).
func BenchmarkScanPipelineTrajSTSeed(b *testing.B) {
	runTrajBench(b, seedScanQuery, true)
}

// BenchmarkScanPipelineTrajSTProjected: pipelined path with the GPS list
// projected out — survivors skip gzip too.
func BenchmarkScanPipelineTrajSTProjected(b *testing.B) {
	needed := make([]bool, 7)
	needed[0] = true // tid
	runTrajBench(b, func(t *Table, q index.Query, emit func(exec.Row) bool) error {
		return t.ScanProjected(context.Background(), q, needed, emit)
	}, false)
}

var (
	orderBenchOnce sync.Once
	orderBenchTbl  *Table
	orderBenchErr  error
)

const benchOrderCount = 30000

// orderBenchTable loads a plain (uncompressed) point table, the paper's
// order scenario.
func orderBenchTable() (*Table, error) {
	orderBenchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "just-bench-order-")
		if err != nil {
			orderBenchErr = err
			return
		}
		cluster, err := kv.OpenCluster(dir, benchClusterOptions())
		if err != nil {
			orderBenchErr = err
			return
		}
		cat, _ := OpenCatalog("")
		d := &Desc{
			Name: "orders", Kind: KindCommon,
			Columns: []Column{
				{Name: "fid", Type: exec.TypeInt, PrimaryKey: true},
				{Name: "time", Type: exec.TypeTime},
				{Name: "geom", Type: exec.TypeGeometry, Subtype: "point"},
				{Name: "rider", Type: exec.TypeString},
				{Name: "fee", Type: exec.TypeFloat},
			},
			Indexes: []IndexDesc{
				{Strategy: "attr", ID: 0},
				{Strategy: "z2t", ID: 1},
			},
			FidColumn: "fid", GeomColumn: "geom", TimeColumn: "time",
		}
		if err := cat.Create(d); err != nil {
			orderBenchErr = err
			return
		}
		tbl, err := Open(d, cluster, IndexConfig{Shards: 2, Period: 24 * time.Hour})
		if err != nil {
			orderBenchErr = err
			return
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < benchOrderCount; i++ {
			row := exec.Row{
				int64(i),
				int64(rng.Intn(int(benchDayMS))),
				geom.Point{Lng: 116.0 + rng.Float64(), Lat: 39.5 + rng.Float64()},
				fmt.Sprintf("rider-%04d", rng.Intn(500)),
				rng.Float64() * 30,
			}
			if err := tbl.Insert(row); err != nil {
				orderBenchErr = err
				return
			}
		}
		if err := cluster.Flush(); err != nil {
			orderBenchErr = err
			return
		}
		d.MinTimeMS, d.MaxTimeMS = 0, benchDayMS
		orderBenchTbl = tbl
	})
	return orderBenchTbl, orderBenchErr
}

func runOrderBench(b *testing.B, scan func(*Table, index.Query, func(exec.Row) bool) error) {
	tbl, err := orderBenchTable()
	if err != nil {
		b.Fatal(err)
	}
	q := index.Query{
		Window:  geom.NewMBR(116.2, 39.7, 116.7, 40.2),
		HasTime: true,
		TMin:    10 * 3600 * 1000,
		TMax:    14 * 3600 * 1000,
	}
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		rows = 0
		if err := scan(tbl, q, func(r exec.Row) bool {
			rows++
			return true
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if rows == 0 {
		b.Fatal("query matched nothing")
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkScanPipelineOrderST(b *testing.B) {
	runOrderBench(b, func(t *Table, q index.Query, emit func(exec.Row) bool) error {
		return t.ScanQuery(context.Background(), q, emit)
	})
}

func BenchmarkScanPipelineOrderSTSeed(b *testing.B) {
	runOrderBench(b, seedScanQuery)
}
