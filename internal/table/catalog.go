// Package table implements JUST's storage data models (Section IV-D):
// common tables, plugin tables (trajectory), view tables, and the meta
// table (catalog), plus the row codec with the paper's per-field
// compression mechanism.
//
// The paper keeps meta tables in MySQL; this reproduction embeds an
// equivalent transactional catalog persisted by atomic file renames —
// small, strongly consistent, and fast for SHOW/DESC, which is all the
// paper requires of it.
package table

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"just/internal/exec"
)

// Errors returned by the catalog.
var (
	// ErrTableExists reports a duplicate CREATE TABLE.
	ErrTableExists = errors.New("table: already exists")
	// ErrNoTable reports a missing table.
	ErrNoTable = errors.New("table: not found")
	// ErrBadSchema reports an invalid schema definition.
	ErrBadSchema = errors.New("table: invalid schema")
)

// Kind distinguishes the storage data models.
type Kind string

// Table kinds (views live in memory and are tracked separately).
const (
	KindCommon Kind = "common"
	KindPlugin Kind = "plugin"
)

// Column is one column definition including JustQL modifiers
// (`fid integer:primary key`, `geom point:srid=4326`,
// `gpsList st_series:compress=gzip`).
type Column struct {
	Name string        `json:"name"`
	Type exec.DataType `json:"type"`
	// Subtype keeps the declared geometry subtype ("point", "linestring",
	// "polygon", "multipoint"); it decides Z2/Z2T vs XZ2/XZ2T defaults.
	Subtype    string `json:"subtype,omitempty"`
	PrimaryKey bool   `json:"primary_key,omitempty"`
	SRID       int    `json:"srid,omitempty"`
	Compress   string `json:"compress,omitempty"` // "", "gzip", "zip", "lz4"
}

// IndexDesc names one index built for a table.
type IndexDesc struct {
	Strategy string `json:"strategy"` // z2, z2t, xz2, xz2t, z3, xz3, attr
	// PeriodMS is the time-period length for temporal strategies.
	PeriodMS int64 `json:"period_ms,omitempty"`
	// ID is the key-space discriminator within the table.
	ID uint8 `json:"id"`
}

// Desc is the catalog entry for a table — what the paper's meta table
// records.
type Desc struct {
	Name    string      `json:"name"`
	User    string      `json:"user"` // namespace owner; "" = public
	Kind    Kind        `json:"kind"`
	Plugin  string      `json:"plugin,omitempty"` // plugin type, e.g. "trajectory"
	Columns []Column    `json:"columns"`
	Indexes []IndexDesc `json:"indexes"`

	// Field roles inferred at creation time.
	FidColumn  string `json:"fid_column"`
	GeomColumn string `json:"geom_column,omitempty"`
	TimeColumn string `json:"time_column,omitempty"`
	// EndTimeColumn holds the record end time for extended records.
	EndTimeColumn string `json:"end_time_column,omitempty"`

	// TableID prefixes every key of this table in the shared cluster.
	TableID uint32 `json:"table_id"`

	CreatedAt time.Time `json:"created_at"`

	// Stats maintained on ingest, used by DESC and the optimizer.
	RecordCount int64 `json:"record_count"`
	MinTimeMS   int64 `json:"min_time_ms"`
	MaxTimeMS   int64 `json:"max_time_ms"`

	// Stats is the planner statistics snapshot from the last explicit
	// collection (Table.CollectStats); nil until then. Unlike the
	// ingest counters above it is refreshed only on demand, so it can
	// go stale — the optimizer treats it as advisory.
	Stats *TableStats `json:"stats,omitempty"`
}

// Schema converts the column list to an exec schema.
func (d *Desc) Schema() *exec.Schema {
	fields := make([]exec.Field, len(d.Columns))
	for i, c := range d.Columns {
		fields[i] = exec.Field{Name: c.Name, Type: c.Type}
	}
	return exec.NewSchema(fields...)
}

// Column returns the named column definition.
func (d *Desc) Column(name string) (Column, bool) {
	for _, c := range d.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return Column{}, false
}

// QualifiedName returns the namespaced name used as the unique catalog
// key: "<user>.<name>" (the per-user prefix of Section VII-A).
func QualifiedName(user, name string) string {
	if user == "" {
		return name
	}
	return user + "." + name
}

var nameRE = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)

// Catalog is the meta table: a mutex-guarded map persisted atomically.
type Catalog struct {
	mu     sync.RWMutex
	path   string // "" = memory only
	tables map[string]*Desc
	nextID uint32
}

type catalogFile struct {
	Tables map[string]*Desc `json:"tables"`
	NextID uint32           `json:"next_id"`
}

// OpenCatalog loads (or initializes) the catalog at path; an empty path
// keeps it in memory.
func OpenCatalog(path string) (*Catalog, error) {
	c := &Catalog{path: path, tables: map[string]*Desc{}, nextID: 1}
	if path == "" {
		return c, nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return c, nil
	}
	if err != nil {
		return nil, err
	}
	var f catalogFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("table: corrupt catalog: %w", err)
	}
	if f.Tables != nil {
		c.tables = f.Tables
	}
	if f.NextID > 0 {
		c.nextID = f.NextID
	}
	return c, nil
}

func (c *Catalog) persistLocked() error {
	if c.path == "" {
		return nil
	}
	data, err := json.MarshalIndent(catalogFile{Tables: c.tables, NextID: c.nextID}, "", " ")
	if err != nil {
		return err
	}
	tmp := c.path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(c.path), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.path)
}

// Create registers a table; the Desc's TableID is assigned here.
func (c *Catalog) Create(d *Desc) error {
	if !nameRE.MatchString(d.Name) {
		return fmt.Errorf("%w: bad table name %q", ErrBadSchema, d.Name)
	}
	if len(d.Columns) == 0 {
		return fmt.Errorf("%w: no columns", ErrBadSchema)
	}
	seen := map[string]bool{}
	for _, col := range d.Columns {
		if !nameRE.MatchString(col.Name) {
			return fmt.Errorf("%w: bad column name %q", ErrBadSchema, col.Name)
		}
		if seen[col.Name] {
			return fmt.Errorf("%w: duplicate column %q", ErrBadSchema, col.Name)
		}
		seen[col.Name] = true
		switch col.Compress {
		case "", "gzip", "zip", "lz4":
		default:
			return fmt.Errorf("%w: column %q: unknown compression %q (want gzip, zip or lz4)", ErrBadSchema, col.Name, col.Compress)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	qn := QualifiedName(d.User, d.Name)
	if _, ok := c.tables[qn]; ok {
		return fmt.Errorf("%w: %s", ErrTableExists, qn)
	}
	d.TableID = c.nextID
	c.nextID++
	if d.CreatedAt.IsZero() {
		d.CreatedAt = time.Now()
	}
	c.tables[qn] = d
	return c.persistLocked()
}

// Get returns the descriptor for user's table name.
func (c *Catalog) Get(user, name string) (*Desc, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if d, ok := c.tables[QualifiedName(user, name)]; ok {
		return d, nil
	}
	// Fall back to the public namespace.
	if user != "" {
		if d, ok := c.tables[name]; ok {
			return d, nil
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
}

// Drop removes the table entry.
func (c *Catalog) Drop(user, name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	qn := QualifiedName(user, name)
	if _, ok := c.tables[qn]; !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	delete(c.tables, qn)
	return c.persistLocked()
}

// List returns the names of the user's tables (SHOW TABLES), sorted.
func (c *Catalog) List(user string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for _, d := range c.tables {
		if d.User == user {
			out = append(out, d.Name)
		}
	}
	sort.Strings(out)
	return out
}

// SetStats persists a planner statistics snapshot for the table.
func (c *Catalog) SetStats(user, name string, st *TableStats) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.tables[QualifiedName(user, name)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	d.Stats = st
	return c.persistLocked()
}

// UpdateStats folds ingest statistics into the descriptor.
func (c *Catalog) UpdateStats(user, name string, added int64, minT, maxT int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.tables[QualifiedName(user, name)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	if d.RecordCount == 0 || minT < d.MinTimeMS {
		d.MinTimeMS = minT
	}
	if d.RecordCount == 0 || maxT > d.MaxTimeMS {
		d.MaxTimeMS = maxT
	}
	d.RecordCount += added
	return c.persistLocked()
}
