package table

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"just/internal/compress"
	"just/internal/exec"
	"just/internal/geom"
)

// ErrBadRow reports an undecodable stored row.
var ErrBadRow = errors.New("table: corrupt row encoding")

// Codec serializes rows of one schema, applying the paper's per-field
// compression mechanism (Section IV-D): columns flagged
// `compress=gzip|zip|lz4` have their encoded bytes compressed before
// storage, which shrinks big fields like a trajectory's GPS list and
// cuts the disk IO a query pays to read them back. lz4 trades a little
// ratio for an order of magnitude faster decompression — the right
// default for hot scan columns.
type Codec struct {
	cols []Column
}

// NewCodec builds a codec for the column list.
func NewCodec(cols []Column) *Codec { return &Codec{cols: cols} }

// Encode serializes row (which must match the codec's arity):
// [nullBitmap][field...], each field length-prefixed.
func (c *Codec) Encode(row exec.Row) ([]byte, error) {
	if len(row) != len(c.cols) {
		return nil, fmt.Errorf("table: row arity %d != schema %d", len(row), len(c.cols))
	}
	bitmap := make([]byte, (len(c.cols)+7)/8)
	var body bytes.Buffer
	for i, col := range c.cols {
		if row[i] == nil {
			bitmap[i/8] |= 1 << (i % 8)
			continue
		}
		var field []byte
		var err error
		if col.Type == exec.TypeSTSeries && col.Compress != "" {
			// The paper's compression mechanism for GPS lists: delta
			// encoding, then the field compressor below.
			pts, ok := row[i].([]geom.TPoint)
			if !ok {
				return nil, fmt.Errorf("table: column %q: %v", col.Name, typeErr(col.Type, row[i]))
			}
			var buf bytes.Buffer
			encodeSTSeries(&buf, pts, true)
			field = buf.Bytes()
		} else {
			field, err = encodeValue(col.Type, row[i])
			if err != nil {
				return nil, fmt.Errorf("table: column %q: %w", col.Name, err)
			}
		}
		if col.Compress != "" {
			field, err = compressField(col.Compress, field)
			if err != nil {
				return nil, err
			}
		}
		var lenBuf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(lenBuf[:], uint64(len(field)))
		body.Write(lenBuf[:n])
		body.Write(field)
	}
	out := make([]byte, 0, len(bitmap)+body.Len())
	out = append(out, bitmap...)
	return append(out, body.Bytes()...), nil
}

// Decode deserializes a stored row.
func (c *Codec) Decode(data []byte) (exec.Row, error) {
	return c.DecodeProjected(data, nil)
}

// DecodeProjected deserializes only the columns marked in needed
// (nil = every column): unneeded fields are skipped over by their
// length prefix without decompression or decoding, which is what lets a
// projected query over a trajectory table never pay the gzip cost of
// its GPS list. Skipped columns are left nil in the returned row.
func (c *Codec) DecodeProjected(data []byte, needed []bool) (exec.Row, error) {
	row := make(exec.Row, len(c.cols))
	if err := c.decodeInto(row, data, needed); err != nil {
		return nil, err
	}
	return row, nil
}

// decodeInto fills the needed columns of row from data. Columns already
// non-nil in row are not decoded again, so a scan can decode its filter
// columns first, post-filter, and only then decode the remaining (often
// compressed) columns of surviving rows.
func (c *Codec) decodeInto(row exec.Row, data []byte, needed []bool) error {
	nb := (len(c.cols) + 7) / 8
	if len(data) < nb {
		return ErrBadRow
	}
	bitmap := data[:nb]
	rest := data[nb:]
	for i, col := range c.cols {
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			continue // null
		}
		l, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < l {
			return ErrBadRow
		}
		field := rest[n : n+int(l)]
		rest = rest[n+int(l):]
		if needed != nil && !needed[i] {
			continue // projected out: skip decompression and decoding
		}
		if row[i] != nil {
			continue // already decoded by an earlier pass
		}
		if col.Compress != "" {
			buf := fieldBufPool.Get().(*bytes.Buffer)
			buf.Reset()
			if err := decompressInto(buf, col.Compress, field); err != nil {
				fieldBufPool.Put(buf)
				return err
			}
			v, err := decodeValue(col.Type, buf.Bytes())
			fieldBufPool.Put(buf)
			if err != nil {
				return fmt.Errorf("table: column %q: %w", col.Name, err)
			}
			row[i] = v
			continue
		}
		v, err := decodeValue(col.Type, field)
		if err != nil {
			return fmt.Errorf("table: column %q: %w", col.Name, err)
		}
		row[i] = v
	}
	return nil
}

// DecodeIntoBatch decodes the needed columns of one encoded row into
// the batch's column vectors at physical row ri (allocated beforehand
// with b.Grow). Scalar columns land in the typed vectors without
// boxing; unneeded fields are skipped by their length prefix, exactly
// as in DecodeProjected. Calling it again on the same row with a
// disjoint needed mask fills further columns — the late-materialization
// second pass for rows that survived the filter.
//
// interns, when non-nil, supplies a per-column string dictionary: a
// string column with a dictionary set resolves each value to one
// canonical string (one allocation per distinct value, not per row).
// Dictionaries are not safe for concurrent use; callers give each scan
// task its own.
func (c *Codec) DecodeIntoBatch(b *exec.ColumnBatch, ri int, data []byte, needed []bool, interns []*compress.Dict) error {
	nb := (len(c.cols) + 7) / 8
	if len(data) < nb {
		return ErrBadRow
	}
	bitmap := data[:nb]
	rest := data[nb:]
	for i, col := range c.cols {
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			continue // null: vectors default to NULL at every row
		}
		l, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < l {
			return ErrBadRow
		}
		field := rest[n : n+int(l)]
		rest = rest[n+int(l):]
		if needed != nil && !needed[i] {
			continue
		}
		v := b.Col(i)
		var itn *compress.Dict
		if interns != nil {
			itn = interns[i]
		}
		if col.Compress != "" {
			buf := fieldBufPool.Get().(*bytes.Buffer)
			buf.Reset()
			if err := decompressInto(buf, col.Compress, field); err != nil {
				fieldBufPool.Put(buf)
				return err
			}
			err := decodeFieldInto(v, ri, col, buf.Bytes(), itn)
			fieldBufPool.Put(buf)
			if err != nil {
				return err
			}
			continue
		}
		if err := decodeFieldInto(v, ri, col, field, itn); err != nil {
			return err
		}
	}
	return nil
}

// decodeFieldInto decodes one field into vector v at row ri, unboxed
// for the scalar types. itn, when non-nil, interns string values.
func decodeFieldInto(v *exec.Vector, ri int, col Column, field []byte, itn *compress.Dict) error {
	switch col.Type {
	case exec.TypeInt, exec.TypeTime:
		x, n := binary.Varint(field)
		if n <= 0 {
			return ErrBadRow
		}
		v.Nulls[ri] = false
		v.Ints[ri] = x
	case exec.TypeFloat:
		if len(field) != 8 {
			return ErrBadRow
		}
		v.Nulls[ri] = false
		v.Floats[ri] = math.Float64frombits(binary.LittleEndian.Uint64(field))
	case exec.TypeString:
		v.Nulls[ri] = false
		if itn != nil {
			v.Strs[ri] = itn.Intern(field)
		} else {
			v.Strs[ri] = string(field)
		}
	case exec.TypeBool:
		if len(field) != 1 {
			return ErrBadRow
		}
		v.Nulls[ri] = false
		v.Bools[ri] = field[0] == 1
	default:
		val, err := decodeValue(col.Type, field)
		if err != nil {
			return fmt.Errorf("table: column %q: %w", col.Name, err)
		}
		v.Set(ri, val)
	}
	return nil
}

// DecodeTimeBounds extracts the record's [start, end] time from an
// encoded row without decoding anything else — the SSTable writer's
// zone-map extractor. endIdx may be -1 for point records (end = start).
// ok is false when the row has no usable time (NULL, corrupt), which
// the caller must treat as "block unprunable".
func (c *Codec) DecodeTimeBounds(data []byte, timeIdx, endIdx int) (tmin, tmax int64, ok bool) {
	nb := (len(c.cols) + 7) / 8
	if timeIdx < 0 || len(data) < nb {
		return 0, 0, false
	}
	bitmap := data[:nb]
	rest := data[nb:]
	var haveMin, haveMax bool
	for i, col := range c.cols {
		if i > timeIdx && i > endIdx {
			break
		}
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			if i == timeIdx || i == endIdx {
				return 0, 0, false
			}
			continue
		}
		l, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < l {
			return 0, 0, false
		}
		field := rest[n : n+int(l)]
		rest = rest[n+int(l):]
		if i != timeIdx && i != endIdx {
			continue
		}
		if col.Compress != "" {
			return 0, 0, false // compressed time column: not worth inflating
		}
		x, vn := binary.Varint(field)
		if vn <= 0 {
			return 0, 0, false
		}
		if i == timeIdx {
			tmin, haveMin = x, true
			if endIdx < 0 {
				tmax, haveMax = x, true
			}
		}
		if i == endIdx {
			tmax, haveMax = x, true
		}
	}
	return tmin, tmax, haveMin && haveMax
}

// fieldBufPool provides the scratch buffer every compressed field read
// inflates into; decodeValue copies out of it before it returns to the
// pool. The gzip/zlib/lz4 stream state itself is pooled inside
// internal/compress, shared with the SSTable block and WAL paths.
var fieldBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func compressField(method string, data []byte) ([]byte, error) {
	switch method {
	case "lz4":
		// The frame's leading 0x4C magic is disjoint from the gzip
		// (0x1f) and zlib (0x78) stream magics, so decompressInto can
		// dispatch on the stored bytes alone.
		return compress.CompressLZ4Frame(nil, data), nil
	case "gzip":
		var buf bytes.Buffer
		if err := compress.CompressGzip(&buf, data); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	case "zip":
		var buf bytes.Buffer
		if err := compress.CompressZlib(&buf, data); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	default:
		return nil, fmt.Errorf("table: unknown compression %q", method)
	}
}

// decompressInto inflates a compressed field into dst using the pooled
// decompressors in internal/compress. The stored bytes are
// self-describing — gzip streams open with 0x1f, zlib with 0x78, lz4
// frames with 0x4C 0x5A — so dispatch sniffs the data rather than
// trusting the declared method: a column migrated from `compress=gzip`
// to `compress=lz4` keeps its old rows readable with no rewrite.
func decompressInto(dst *bytes.Buffer, method string, data []byte) error {
	var err error
	switch {
	case len(data) >= 1 && data[0] == 0x1f:
		err = compress.DecompressGzipTo(dst, data)
	case len(data) >= 1 && data[0] == 0x78:
		err = compress.DecompressZlibTo(dst, data)
	case compress.IsLZ4Frame(data):
		err = compress.DecompressLZ4FrameTo(dst, data)
	default:
		switch method {
		case "gzip":
			err = compress.DecompressGzipTo(dst, data)
		case "zip":
			err = compress.DecompressZlibTo(dst, data)
		case "lz4":
			err = compress.DecompressLZ4FrameTo(dst, data)
		default:
			return fmt.Errorf("table: unknown compression %q", method)
		}
	}
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRow, err)
	}
	return nil
}

func encodeValue(t exec.DataType, v any) ([]byte, error) {
	var buf bytes.Buffer
	switch t {
	case exec.TypeInt, exec.TypeTime:
		x, ok := v.(int64)
		if !ok {
			return nil, typeErr(t, v)
		}
		var b [binary.MaxVarintLen64]byte
		n := binary.PutVarint(b[:], x)
		return b[:n], nil
	case exec.TypeFloat:
		x, ok := v.(float64)
		if !ok {
			if i, iok := v.(int64); iok {
				x = float64(i)
			} else {
				return nil, typeErr(t, v)
			}
		}
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
		return b[:], nil
	case exec.TypeString:
		x, ok := v.(string)
		if !ok {
			return nil, typeErr(t, v)
		}
		return []byte(x), nil
	case exec.TypeBytes:
		x, ok := v.([]byte)
		if !ok {
			return nil, typeErr(t, v)
		}
		return x, nil
	case exec.TypeBool:
		x, ok := v.(bool)
		if !ok {
			return nil, typeErr(t, v)
		}
		if x {
			return []byte{1}, nil
		}
		return []byte{0}, nil
	case exec.TypeGeometry:
		g, ok := v.(geom.Geometry)
		if !ok {
			return nil, typeErr(t, v)
		}
		encodeGeometry(&buf, g)
		return buf.Bytes(), nil
	case exec.TypeSTSeries:
		pts, ok := v.([]geom.TPoint)
		if !ok {
			return nil, typeErr(t, v)
		}
		encodeSTSeries(&buf, pts, false)
		return buf.Bytes(), nil
	case exec.TypeTSeries:
		xs, ok := v.([]float64)
		if !ok {
			return nil, typeErr(t, v)
		}
		var b [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(b[:], uint64(len(xs)))
		buf.Write(b[:n])
		for _, x := range xs {
			var fb [8]byte
			binary.LittleEndian.PutUint64(fb[:], math.Float64bits(x))
			buf.Write(fb[:])
		}
		return buf.Bytes(), nil
	default:
		return nil, fmt.Errorf("table: unsupported type %v", t)
	}
}

func decodeValue(t exec.DataType, data []byte) (any, error) {
	switch t {
	case exec.TypeInt, exec.TypeTime:
		x, n := binary.Varint(data)
		if n <= 0 {
			return nil, ErrBadRow
		}
		return x, nil
	case exec.TypeFloat:
		if len(data) != 8 {
			return nil, ErrBadRow
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(data)), nil
	case exec.TypeString:
		return string(data), nil
	case exec.TypeBytes:
		return append([]byte(nil), data...), nil
	case exec.TypeBool:
		if len(data) != 1 {
			return nil, ErrBadRow
		}
		return data[0] == 1, nil
	case exec.TypeGeometry:
		g, _, err := decodeGeometry(data)
		return g, err
	case exec.TypeSTSeries:
		return decodeSTSeries(data)
	case exec.TypeTSeries:
		n, sz := binary.Uvarint(data)
		if sz <= 0 || uint64(len(data)-sz) < n*8 {
			return nil, ErrBadRow
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[sz+i*8:]))
		}
		return out, nil
	default:
		return nil, fmt.Errorf("table: unsupported type %v", t)
	}
}

func typeErr(t exec.DataType, v any) error {
	return fmt.Errorf("value %T does not match column type %v", v, t)
}

func writeF64(buf *bytes.Buffer, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	buf.Write(b[:])
}

func readF64(data []byte) (float64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, ErrBadRow
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(data)), data[8:], nil
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	buf.Write(b[:n])
}

func encodePointSeq(buf *bytes.Buffer, pts []geom.Point) {
	writeUvarint(buf, uint64(len(pts)))
	for _, p := range pts {
		writeF64(buf, p.Lng)
		writeF64(buf, p.Lat)
	}
}

func decodePointSeq(data []byte) ([]geom.Point, []byte, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, nil, ErrBadRow
	}
	data = data[sz:]
	pts := make([]geom.Point, n)
	var err error
	for i := range pts {
		if pts[i].Lng, data, err = readF64(data); err != nil {
			return nil, nil, err
		}
		if pts[i].Lat, data, err = readF64(data); err != nil {
			return nil, nil, err
		}
	}
	return pts, data, nil
}

func encodeGeometry(buf *bytes.Buffer, g geom.Geometry) {
	buf.WriteByte(byte(g.Type()))
	switch v := g.(type) {
	case geom.Point:
		writeF64(buf, v.Lng)
		writeF64(buf, v.Lat)
	case *geom.LineString:
		encodePointSeq(buf, v.Points)
	case *geom.MultiPoint:
		encodePointSeq(buf, v.Points)
	case *geom.Polygon:
		writeUvarint(buf, uint64(1+len(v.Holes)))
		encodePointSeq(buf, v.Outer)
		for _, h := range v.Holes {
			encodePointSeq(buf, h)
		}
	}
}

func decodeGeometry(data []byte) (geom.Geometry, []byte, error) {
	if len(data) < 1 {
		return nil, nil, ErrBadRow
	}
	t := geom.Type(data[0])
	data = data[1:]
	switch t {
	case geom.TypePoint:
		lng, rest, err := readF64(data)
		if err != nil {
			return nil, nil, err
		}
		lat, rest, err := readF64(rest)
		if err != nil {
			return nil, nil, err
		}
		return geom.Point{Lng: lng, Lat: lat}, rest, nil
	case geom.TypeLineString:
		pts, rest, err := decodePointSeq(data)
		if err != nil {
			return nil, nil, err
		}
		return &geom.LineString{Points: pts}, rest, nil
	case geom.TypeMultiPoint:
		pts, rest, err := decodePointSeq(data)
		if err != nil {
			return nil, nil, err
		}
		return &geom.MultiPoint{Points: pts}, rest, nil
	case geom.TypePolygon:
		nr, sz := binary.Uvarint(data)
		if sz <= 0 || nr == 0 {
			return nil, nil, ErrBadRow
		}
		data = data[sz:]
		rings := make([][]geom.Point, nr)
		var err error
		for i := range rings {
			if rings[i], data, err = decodePointSeq(data); err != nil {
				return nil, nil, err
			}
		}
		p := &geom.Polygon{Outer: rings[0]}
		if len(rings) > 1 {
			p.Holes = rings[1:]
		}
		return p, data, nil
	default:
		return nil, nil, fmt.Errorf("%w: geometry type %d", ErrBadRow, t)
	}
}

// stSeriesScale fixes GPS coordinates at 1e-7 degrees (~1 cm), well
// below GPS receiver accuracy; it lets the delta format store coordinate
// deltas as small varints.
const stSeriesScale = 1e7

// st_series wire formats. Plain columns use the standard serialization
// (raw float64 coordinates, as GeoMesa's serializer would); columns with
// the paper's compression mechanism enabled use the delta format, whose
// output the field compressor then gzips. The leading format byte makes
// the value self-describing.
const (
	stSeriesFormatPlain = 0
	stSeriesFormatDelta = 1
	// Delta2 refines Delta: coordinates stay first-order deltas, but
	// timestamps are delta-of-delta — GPS fixes arrive at a near-fixed
	// sampling interval, so the second difference hovers at zero and
	// each timestamp usually costs a single varint byte. New compressed
	// writes use this format; Delta remains decodable for stored rows.
	stSeriesFormatDelta2 = 2
)

// encodeSTSeries writes timestamped points. The delta format encodes all
// three dimensions as varint deltas (coordinates at 1e-7° fixed
// precision); consecutive GPS fixes are meters and seconds apart, so the
// deltas are tiny and gzip on top squeezes the remaining regularity —
// the property the paper's compression mechanism exploits on courier GPS
// lists.
func encodeSTSeries(buf *bytes.Buffer, pts []geom.TPoint, delta bool) {
	if !delta {
		buf.WriteByte(stSeriesFormatPlain)
		writeUvarint(buf, uint64(len(pts)))
		var b [binary.MaxVarintLen64]byte
		var prevT int64
		for _, p := range pts {
			writeF64(buf, p.Lng)
			writeF64(buf, p.Lat)
			n := binary.PutVarint(b[:], p.T-prevT)
			buf.Write(b[:n])
			prevT = p.T
		}
		return
	}
	buf.WriteByte(stSeriesFormatDelta2)
	writeUvarint(buf, uint64(len(pts)))
	var b [binary.MaxVarintLen64]byte
	var prevLng, prevLat, prevT, prevDT int64
	for _, p := range pts {
		lng := int64(math.Round(p.Lng * stSeriesScale))
		lat := int64(math.Round(p.Lat * stSeriesScale))
		n := binary.PutVarint(b[:], lng-prevLng)
		buf.Write(b[:n])
		n = binary.PutVarint(b[:], lat-prevLat)
		buf.Write(b[:n])
		dt := p.T - prevT
		n = binary.PutVarint(b[:], dt-prevDT)
		buf.Write(b[:n])
		prevLng, prevLat, prevT, prevDT = lng, lat, p.T, dt
	}
}

func decodeSTSeries(data []byte) ([]geom.TPoint, error) {
	if len(data) < 1 {
		return nil, ErrBadRow
	}
	format := data[0]
	data = data[1:]
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, ErrBadRow
	}
	data = data[sz:]
	pts := make([]geom.TPoint, n)
	switch format {
	case stSeriesFormatPlain:
		var prevT int64
		var err error
		for i := range pts {
			if pts[i].Lng, data, err = readF64(data); err != nil {
				return nil, err
			}
			if pts[i].Lat, data, err = readF64(data); err != nil {
				return nil, err
			}
			d, vn := binary.Varint(data)
			if vn <= 0 {
				return nil, ErrBadRow
			}
			data = data[vn:]
			prevT += d
			pts[i].T = prevT
		}
		return pts, nil
	case stSeriesFormatDelta, stSeriesFormatDelta2:
		var prevLng, prevLat, prevT, prevDT int64
		for i := range pts {
			var deltas [3]int64
			for j := range deltas {
				d, vn := binary.Varint(data)
				if vn <= 0 {
					return nil, ErrBadRow
				}
				data = data[vn:]
				deltas[j] = d
			}
			prevLng += deltas[0]
			prevLat += deltas[1]
			if format == stSeriesFormatDelta2 {
				prevDT += deltas[2]
				prevT += prevDT
			} else {
				prevT += deltas[2]
			}
			pts[i] = geom.TPoint{
				Point: geom.Point{
					Lng: float64(prevLng) / stSeriesScale,
					Lat: float64(prevLat) / stSeriesScale,
				},
				T: prevT,
			}
		}
		return pts, nil
	default:
		return nil, fmt.Errorf("%w: st_series format %d", ErrBadRow, format)
	}
}
