package table

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"
	"unsafe"

	"just/internal/exec"
	"just/internal/geom"
	"just/internal/index"
	"just/internal/kv"
)

// TestFieldCompressSniffing: every field codec round-trips, and the
// decoder dispatches on the stored bytes — a field written under one
// method stays readable when the column later declares another.
func TestFieldCompressSniffing(t *testing.T) {
	payload := bytes.Repeat([]byte("order payload with structure;"), 40)
	methods := []string{"gzip", "zip", "lz4"}
	for _, wrote := range methods {
		enc, err := compressField(wrote, payload)
		if err != nil {
			t.Fatalf("compress %s: %v", wrote, err)
		}
		for _, declared := range methods {
			var buf bytes.Buffer
			if err := decompressInto(&buf, declared, enc); err != nil {
				t.Fatalf("wrote %s, declared %s: %v", wrote, declared, err)
			}
			if !bytes.Equal(buf.Bytes(), payload) {
				t.Fatalf("wrote %s, declared %s: payload mismatch", wrote, declared)
			}
		}
	}
	if _, err := compressField("snappy", payload); err == nil {
		t.Fatal("unknown method accepted")
	}
}

// TestSTSeriesDelta2 pins the delta-of-delta timestamp format: it
// round-trips irregular series, decodes the legacy first-order-delta
// format, and beats it on regularly sampled GPS fixes.
func TestSTSeriesDelta2(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	irregular := make([]geom.TPoint, 200)
	tm := int64(0)
	for i := range irregular {
		tm += int64(rng.Intn(10000))
		irregular[i] = geom.TPoint{
			Point: geom.Point{Lng: 116 + rng.Float64(), Lat: 39 + rng.Float64()},
			T:     tm,
		}
	}
	var buf bytes.Buffer
	encodeSTSeries(&buf, irregular, true)
	if buf.Bytes()[0] != stSeriesFormatDelta2 {
		t.Fatalf("compressed write used format %d, want %d", buf.Bytes()[0], stSeriesFormatDelta2)
	}
	got, err := decodeSTSeries(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for i := range irregular {
		if got[i].T != irregular[i].T {
			t.Fatalf("point %d: T=%d want %d", i, got[i].T, irregular[i].T)
		}
		if math.Abs(got[i].Lng-irregular[i].Lng) > 1e-6 || math.Abs(got[i].Lat-irregular[i].Lat) > 1e-6 {
			t.Fatalf("point %d: coordinates off", i)
		}
	}

	// Legacy format 1 (first-order timestamp deltas) must stay decodable:
	// hand-encode the same points the way the previous release did.
	var legacy bytes.Buffer
	legacy.WriteByte(stSeriesFormatDelta)
	writeUvarint(&legacy, uint64(len(irregular)))
	var b [binary.MaxVarintLen64]byte
	var prevLng, prevLat, prevT int64
	for _, p := range irregular {
		lng := int64(math.Round(p.Lng * stSeriesScale))
		lat := int64(math.Round(p.Lat * stSeriesScale))
		n := binary.PutVarint(b[:], lng-prevLng)
		legacy.Write(b[:n])
		n = binary.PutVarint(b[:], lat-prevLat)
		legacy.Write(b[:n])
		n = binary.PutVarint(b[:], p.T-prevT)
		legacy.Write(b[:n])
		prevLng, prevLat, prevT = lng, lat, p.T
	}
	old, err := decodeSTSeries(legacy.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, got) {
		t.Fatal("legacy format-1 decode disagrees with format-2 decode of the same points")
	}

	// Regular sampling (fixed 3 s interval) is where delta-of-delta wins:
	// second differences are zero, one byte per timestamp.
	regular := make([]geom.TPoint, 200)
	for i := range regular {
		regular[i] = geom.TPoint{Point: irregular[i].Point, T: int64(i) * 3000}
	}
	var dod bytes.Buffer
	encodeSTSeries(&dod, regular, true)
	var d1 bytes.Buffer
	d1.WriteByte(stSeriesFormatDelta)
	writeUvarint(&d1, uint64(len(regular)))
	prevLng, prevLat, prevT = 0, 0, 0
	for _, p := range regular {
		lng := int64(math.Round(p.Lng * stSeriesScale))
		lat := int64(math.Round(p.Lat * stSeriesScale))
		n := binary.PutVarint(b[:], lng-prevLng)
		d1.Write(b[:n])
		n = binary.PutVarint(b[:], lat-prevLat)
		d1.Write(b[:n])
		n = binary.PutVarint(b[:], p.T-prevT)
		d1.Write(b[:n])
		prevLng, prevLat, prevT = lng, lat, p.T
	}
	if dod.Len() >= d1.Len() {
		t.Fatalf("delta-of-delta %d bytes, first-order delta %d: no win on regular sampling", dod.Len(), d1.Len())
	}
}

// newTrajTestTableCodec is newTrajTestTable with the GPS list column's
// compression method overridden.
func newTrajTestTableCodec(t *testing.T, rng *rand.Rand, n int, method string) *Table {
	t.Helper()
	cluster, err := kv.OpenCluster(t.TempDir(), kv.ClusterOptions{Options: kv.Options{DisableWAL: true}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	cat, _ := OpenCatalog("")
	d, err := NewDescFromPlugin("", "traj", "trajectory")
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Columns {
		if d.Columns[i].Compress != "" {
			d.Columns[i].Compress = method
		}
	}
	if err := cat.Create(d); err != nil {
		t.Fatal(err)
	}
	tbl, err := Open(d, cluster, IndexConfig{Shards: 2, Period: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	day := int64(24 * 3600 * 1000)
	for i := 0; i < n; i++ {
		lng := 116.0 + rng.Float64()
		lat := 39.5 + rng.Float64()
		t0 := int64(rng.Intn(int(day - 30*3000)))
		pts := make([]geom.TPoint, 30)
		for j := range pts {
			lng += (rng.Float64() - 0.5) * 2e-4
			lat += (rng.Float64() - 0.5) * 2e-4
			pts[j] = geom.TPoint{Point: geom.Point{Lng: lng, Lat: lat}, T: t0 + int64(j)*3000}
		}
		traj := &Trajectory{ID: fmt.Sprintf("t-%04d", i), Points: pts}
		row, err := traj.Row()
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := cluster.Flush(); err != nil {
		t.Fatal(err)
	}
	d.MinTimeMS, d.MaxTimeMS = 0, day
	return tbl
}

// TestScanBatchesGzipLZ4Equality: identical trajectories stored under
// gzip and lz4 field compression must scan back identical through the
// columnar pipeline — the codec changes bytes on disk, never results.
func TestScanBatchesGzipLZ4Equality(t *testing.T) {
	const seed, n = 7, 60
	gz := newTrajTestTableCodec(t, rand.New(rand.NewSource(seed)), n, "gzip")
	lz := newTrajTestTableCodec(t, rand.New(rand.NewSource(seed)), n, "lz4")
	q := index.Query{Window: geom.NewMBR(115.5, 39.0, 117.5, 41.0)}
	a := canonicalRows(collectBatched(t, gz, q, nil))
	b := canonicalRows(collectBatched(t, lz, q, nil))
	if len(a) == 0 {
		t.Fatal("query matched no rows")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("gzip scan (%d rows) != lz4 scan (%d rows)", len(a), len(b))
	}
}

// TestGzipRowsReadableAfterLZ4Migration: rows written while a column
// declared gzip must stay readable after the declaration flips to lz4
// (the sniffing decoder), with new rows written as lz4 alongside.
func TestGzipRowsReadableAfterLZ4Migration(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl := newTrajTestTableCodec(t, rng, 20, "gzip")
	for i := range tbl.Desc.Columns {
		if tbl.Desc.Columns[i].Compress == "gzip" {
			tbl.Desc.Columns[i].Compress = "lz4"
		}
	}
	// The codec holds its own column slice; rebuild it as a reopen would.
	tbl.codec = NewCodec(tbl.Desc.Columns)
	pts := []geom.TPoint{{Point: geom.Point{Lng: 116.4, Lat: 39.9}, T: 1000}}
	traj := &Trajectory{ID: "t-new", Points: pts}
	row, err := traj.Row()
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(row); err != nil {
		t.Fatal(err)
	}
	q := index.Query{Window: geom.NewMBR(115.5, 39.0, 117.5, 41.0)}
	rows := collectBatched(t, tbl, q, nil)
	if len(rows) != 21 {
		t.Fatalf("scanned %d rows after migration, want 21", len(rows))
	}
	for _, r := range rows {
		if _, ok := r[len(r)-1].([]geom.TPoint); !ok {
			t.Fatalf("row %v: GPS list column failed to decode", r[0])
		}
	}
}

// TestStatsDrivenInterning: after ANALYZE, a low-cardinality string
// column is flagged for interning and the columnar scan materializes
// one canonical string per distinct value within a batch.
func TestStatsDrivenInterning(t *testing.T) {
	tbl := newOrderTestTable(t, rand.New(rand.NewSource(5)), 900, 0)
	if tbl.internCols.Load() != nil {
		t.Fatal("interning enabled before statistics")
	}
	if _, err := tbl.RefreshStats(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := tbl.Stats()
	if st.StringSampled == 0 {
		t.Fatal("no string sample collected")
	}
	if d := st.StringDistinct["rider"]; d == 0 || d > 50 {
		t.Fatalf("rider sampled distinct = %d, want 1..50", d)
	}
	ic := tbl.internCols.Load()
	if ic == nil {
		t.Fatal("low-cardinality rider column not flagged for interning")
	}
	riderIdx := tbl.Schema().Index("rider")
	if !(*ic)[riderIdx] {
		t.Fatal("rider flag not set")
	}

	q := index.Query{Window: geom.NewMBR(115.9, 39.4, 117.1, 40.6)}
	sawShared := false
	err := tbl.ScanBatches(context.Background(), q, nil, func(b *exec.ColumnBatch) bool {
		strs := b.Col(riderIdx).Strs
		first := map[string]*byte{}
		for i := 0; i < b.Rows(); i++ {
			s := strs[i]
			if s == "" {
				continue
			}
			p := unsafe.StringData(s)
			if prev, ok := first[s]; ok {
				if prev != p {
					t.Errorf("equal rider strings not interned within a batch")
					return false
				}
				sawShared = true
			} else {
				first[s] = p
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawShared {
		t.Fatal("no batch contained a repeated rider value; fixture too small")
	}
}
