package table

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"just/internal/exec"
	"just/internal/geom"
	"just/internal/index"
	"just/internal/kv"
)

// newOrderTestTable builds a small order table (points + time) with an
// attribute and a z2t index, n rows seeded from rng. flushEvery > 0
// flushes mid-load so rows spread across SSTables and the memtable.
func newOrderTestTable(t *testing.T, rng *rand.Rand, n, flushEvery int) *Table {
	t.Helper()
	cluster, err := kv.OpenCluster(t.TempDir(), kv.ClusterOptions{Options: kv.Options{DisableWAL: true}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	cat, _ := OpenCatalog("")
	d := &Desc{
		Name: "orders", Kind: KindCommon,
		Columns: []Column{
			{Name: "fid", Type: exec.TypeInt, PrimaryKey: true},
			{Name: "time", Type: exec.TypeTime},
			{Name: "geom", Type: exec.TypeGeometry, Subtype: "point"},
			{Name: "rider", Type: exec.TypeString},
			{Name: "fee", Type: exec.TypeFloat},
		},
		Indexes: []IndexDesc{
			{Strategy: "attr", ID: 0},
			{Strategy: "z2t", ID: 1},
		},
		FidColumn: "fid", GeomColumn: "geom", TimeColumn: "time",
	}
	if err := cat.Create(d); err != nil {
		t.Fatal(err)
	}
	tbl, err := Open(d, cluster, IndexConfig{Shards: 2, Period: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	day := int64(24 * 3600 * 1000)
	for i := 0; i < n; i++ {
		row := exec.Row{
			int64(i),
			int64(rng.Intn(int(day))),
			geom.Point{Lng: 116.0 + rng.Float64(), Lat: 39.5 + rng.Float64()},
			fmt.Sprintf("rider-%03d", rng.Intn(50)),
			rng.Float64() * 30,
		}
		if err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
		if flushEvery > 0 && i%flushEvery == flushEvery-1 {
			if err := cluster.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	d.MinTimeMS, d.MaxTimeMS = 0, day
	return tbl
}

// newTrajTestTable builds a small trajectory table (gzip GPS lists,
// xz2/xz2t indexes) via the plugin.
func newTrajTestTable(t *testing.T, rng *rand.Rand, n int) *Table {
	t.Helper()
	cluster, err := kv.OpenCluster(t.TempDir(), kv.ClusterOptions{Options: kv.Options{DisableWAL: true}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	cat, _ := OpenCatalog("")
	d, err := NewDescFromPlugin("", "traj", "trajectory")
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Create(d); err != nil {
		t.Fatal(err)
	}
	tbl, err := Open(d, cluster, IndexConfig{Shards: 2, Period: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	day := int64(24 * 3600 * 1000)
	for i := 0; i < n; i++ {
		lng := 116.0 + rng.Float64()
		lat := 39.5 + rng.Float64()
		t0 := int64(rng.Intn(int(day - 30*3000)))
		pts := make([]geom.TPoint, 30)
		for j := range pts {
			lng += (rng.Float64() - 0.5) * 2e-4
			lat += (rng.Float64() - 0.5) * 2e-4
			pts[j] = geom.TPoint{Point: geom.Point{Lng: lng, Lat: lat}, T: t0 + int64(j)*3000}
		}
		traj := &Trajectory{ID: fmt.Sprintf("t-%04d", i), Points: pts}
		row, err := traj.Row()
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := cluster.Flush(); err != nil {
		t.Fatal(err)
	}
	d.MinTimeMS, d.MaxTimeMS = 0, day
	return tbl
}

// canonicalRows renders rows to sorted strings so two scans compare as
// sets. Geometry columns render as WKT — pointer-typed geometries
// would otherwise print addresses, never contents.
func canonicalRows(rows []exec.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		var sb []byte
		for _, v := range r {
			if g, ok := v.(geom.Geometry); ok {
				sb = fmt.Appendf(sb, "|%s", g.WKT())
			} else {
				sb = fmt.Appendf(sb, "|%v", v)
			}
		}
		out[i] = string(sb)
	}
	sort.Strings(out)
	return out
}

func collectLegacy(t *testing.T, tbl *Table, q index.Query, needed []bool) []exec.Row {
	t.Helper()
	var rows []exec.Row
	if err := tbl.scanRowsLegacy(context.Background(), q, needed, func(r exec.Row) bool {
		rows = append(rows, r)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return rows
}

func collectBatched(t *testing.T, tbl *Table, q index.Query, needed []bool) []exec.Row {
	t.Helper()
	var rows []exec.Row
	if err := tbl.ScanProjected(context.Background(), q, needed, func(r exec.Row) bool {
		rows = append(rows, r)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestScanBatchesMatchesLegacyOrders: the columnar scan must return
// exactly the rows the retired row pipeline returned, across randomized
// spatio-temporal windows and projections, on a point-record table
// spanning SSTables and the memtable.
func TestScanBatchesMatchesLegacyOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := newOrderTestTable(t, rng, 3000, 1000)
	day := int64(24 * 3600 * 1000)
	projections := [][]bool{
		nil,
		{true, true, true, true, true},
		{true, false, false, false, false},
		{true, true, false, false, true},
	}
	for trial := 0; trial < 8; trial++ {
		lng := 116.0 + rng.Float64()*0.8
		lat := 39.5 + rng.Float64()*0.8
		q := index.Query{
			Window: geom.NewMBR(lng, lat, lng+0.3, lat+0.3),
		}
		if trial%2 == 0 {
			q.HasTime = true
			q.TMin = int64(rng.Intn(12)) * 3600 * 1000
			q.TMax = q.TMin + 4*3600*1000
		}
		if trial == 7 { // full coverage
			q = index.Query{Window: geom.WorldMBR, HasTime: true, TMin: 0, TMax: day}
		}
		needed := projections[trial%len(projections)]
		want := canonicalRows(collectLegacy(t, tbl, q, needed))
		got := canonicalRows(collectBatched(t, tbl, q, needed))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: columnar scan diverges from row pipeline: %d vs %d rows", trial, len(got), len(want))
		}
		if trial == 0 && len(want) == 0 {
			t.Fatal("degenerate trial: query matched nothing")
		}
	}
}

// TestScanBatchesMatchesLegacyTraj: same equivalence on the trajectory
// plugin table — gzip-compressed GPS lists, xz2/xz2t indexes, NULLable
// projected columns.
func TestScanBatchesMatchesLegacyTraj(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tbl := newTrajTestTable(t, rng, 200)
	projections := [][]bool{
		nil,
		{true, false, false, false, false, false, false}, // tid only
		{true, true, false, false, true, true, false},    // no gps list
		{true, true, true, true, true, true, true},       // everything
	}
	for trial := 0; trial < 6; trial++ {
		lng := 116.0 + rng.Float64()*0.7
		lat := 39.5 + rng.Float64()*0.7
		q := index.Query{Window: geom.NewMBR(lng, lat, lng+0.4, lat+0.4)}
		if trial%2 == 1 {
			q.HasTime = true
			q.TMin = int64(rng.Intn(10)) * 3600 * 1000
			q.TMax = q.TMin + 6*3600*1000
		}
		needed := projections[trial%len(projections)]
		want := canonicalRows(collectLegacy(t, tbl, q, needed))
		got := canonicalRows(collectBatched(t, tbl, q, needed))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: columnar scan diverges from row pipeline: %d vs %d rows", trial, len(got), len(want))
		}
	}
}

// TestScanBatchesMemoryBudget: columnar batch allocations are charged
// to the per-query memory budget, so an oversized scan still dies with
// ErrMemoryBudget instead of materializing unbounded batches.
func TestScanBatchesMemoryBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tbl := newOrderTestTable(t, rng, 2000, 0)
	ctx := exec.WithQuery(context.Background(), exec.NewQuery(256))
	err := tbl.ScanBatches(ctx, index.Query{Window: geom.WorldMBR}, nil, func(b *exec.ColumnBatch) bool {
		return true
	})
	if !errors.Is(err, exec.ErrMemoryBudget) {
		t.Fatalf("tiny-budget columnar scan returned %v, want ErrMemoryBudget", err)
	}
}

// TestStatsFlipPlanChoice: the access-path choice must follow the
// statistics. Stale (empty-table) statistics cost the full attribute
// scan cheapest; refreshing after the load flips the same query to the
// selective z2t index; and a table without statistics falls back to the
// fixed heuristic.
func TestStatsFlipPlanChoice(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	tbl := newOrderTestTable(t, rng, 0, 0)
	ctx := context.Background()

	// Stale snapshot: collected while the table is empty.
	stale, err := tbl.RefreshStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stale.RowCount != 0 {
		t.Fatalf("empty-table stats claim %d rows", stale.RowCount)
	}

	// Load after collection: the installed stats are now stale.
	day := int64(24 * 3600 * 1000)
	for i := 0; i < 3000; i++ {
		row := exec.Row{
			int64(i),
			int64(rng.Intn(int(day))),
			geom.Point{Lng: 116.0 + rng.Float64(), Lat: 39.5 + rng.Float64()},
			fmt.Sprintf("rider-%03d", rng.Intn(50)),
			rng.Float64() * 30,
		}
		if err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}

	q := index.Query{
		Window:  geom.NewMBR(116.4, 39.8, 116.5, 39.9),
		HasTime: true,
		TMin:    10 * 3600 * 1000,
		TMax:    12 * 3600 * 1000,
	}

	// Stale stats see zero keys everywhere: the single-range attribute
	// scan is the cheapest candidate.
	p, err := tbl.PlanAccess(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy != "attr" {
		t.Fatalf("stale stats chose %q, want attr full scan", p.Strategy)
	}
	if p.EstKeys < 0 {
		t.Fatal("stats present but plan reports heuristic choice")
	}

	// Fresh stats flip the same query to the selective index.
	if _, err := tbl.RefreshStats(ctx); err != nil {
		t.Fatal(err)
	}
	p, err = tbl.PlanAccess(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy != "z2t" {
		t.Fatalf("fresh stats chose %q, want z2t", p.Strategy)
	}
	if p.EstKeys < 0 {
		t.Fatal("fresh stats plan reports heuristic choice")
	}

	// Both plans answer identically — plan choice never affects results.
	rowsAttr := canonicalRows(collectBatched(t, tbl, q, nil))
	tbl.SetStats(stale)
	rowsStale := canonicalRows(collectBatched(t, tbl, q, nil))
	if !reflect.DeepEqual(rowsAttr, rowsStale) {
		t.Fatal("plan choice changed query results")
	}

	// No statistics at all: heuristic fallback, marked EstKeys == -1.
	tbl.stats.Store(nil)
	p, err = tbl.PlanAccess(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.EstKeys != -1 {
		t.Fatalf("stats-free plan EstKeys = %f, want -1", p.EstKeys)
	}
	if p.Strategy != "z2t" {
		t.Fatalf("heuristic chose %q, want z2t for a time-bounded query", p.Strategy)
	}
}
