package table

import (
	"context"
	"fmt"
	"testing"

	"just/internal/exec"
	"just/internal/geom"
	"just/internal/index"
	"just/internal/kv"
)

// collectPairs snapshots every live key/value pair in a cluster.
func collectPairs(t *testing.T, c *kv.Cluster) map[string]string {
	t.Helper()
	pairs := map[string]string{}
	err := c.ScanRange(kv.KeyRange{}, func(k, v []byte) bool {
		pairs[string(k)] = string(v)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return pairs
}

// TestInsertBatchMatchesInsert drives the same workload — fresh rows,
// upserts that move records in space and time, rows with no geometry,
// and fids repeated within one batch — through the per-row Insert path
// on one cluster and InsertBatch on another, then asserts the stored
// key/value sets are identical. That covers the attribute copy, every
// spatial index copy, and the delete-before-write tombstones.
func TestInsertBatchMatchesInsert(t *testing.T) {
	rowAt := func(fid int, lng, lat float64, hour int64, name string) exec.Row {
		var g any
		if lng != 0 {
			g = geom.Point{Lng: lng, Lat: lat}
		}
		return exec.Row{int64(fid), hour * hourMS, g, name}
	}
	batch1 := make([]exec.Row, 0, 50)
	for i := 0; i < 50; i++ {
		lng, lat := 116.30+float64(i)*0.002, 39.80+float64(i)*0.002
		if i%7 == 0 {
			lng, lat = 0, 0 // non-spatial: lives only in the attribute index
		}
		batch1 = append(batch1, rowAt(i, lng, lat, int64(i%24), fmt.Sprintf("n-%d", i)))
	}
	// Second batch: upserts. fids 0–19 move in space and time (their old
	// index entries must be tombstoned), 20–24 are rewritten in place
	// (same keys, no tombstones), 3 previously non-spatial fids gain a
	// geometry, fid 60 is fresh and appears twice within the batch at two
	// locations, and fid 0 moves twice within the batch.
	batch2 := make([]exec.Row, 0, 30)
	for i := 0; i < 20; i++ {
		batch2 = append(batch2, rowAt(i, 117.10+float64(i)*0.002, 40.10, int64((i+6)%24), fmt.Sprintf("moved-%d", i)))
	}
	for i := 20; i < 25; i++ {
		lng, lat := 116.30+float64(i)*0.002, 39.80+float64(i)*0.002
		batch2 = append(batch2, rowAt(i, lng, lat, int64(i%24), fmt.Sprintf("n-%d", i)))
	}
	batch2 = append(batch2,
		rowAt(7, 116.90, 39.95, 3, "was-nonspatial"),
		rowAt(60, 116.50, 39.60, 4, "dup-first"),
		rowAt(0, 118.00, 40.50, 5, "moved-again"),
		rowAt(60, 116.95, 40.05, 6, "dup-final"),
	)

	serial, serialCluster := newTestTable(t)
	batched, batchedCluster := newTestTable(t)
	for _, rows := range [][]exec.Row{batch1, batch2} {
		for _, row := range rows {
			if err := serial.Insert(row); err != nil {
				t.Fatal(err)
			}
		}
		if err := batched.InsertBatch(rows); err != nil {
			t.Fatal(err)
		}
	}

	want := collectPairs(t, serialCluster)
	got := collectPairs(t, batchedCluster)
	if len(want) == 0 {
		t.Fatal("serial cluster is empty; test is vacuous")
	}
	for k, v := range want {
		gv, ok := got[k]
		if !ok {
			t.Fatalf("batched path missing key %q", k)
		}
		if gv != v {
			t.Fatalf("batched path stores different value for key %q", k)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Fatalf("batched path has stale extra key %q (tombstone not written?)", k)
		}
	}

	// Point reads resolve within-batch duplicates to the last row.
	row, err := batched.Get(int64(60))
	if err != nil || row[3] != "dup-final" {
		t.Fatalf("Get(60) = %v, %v", row, err)
	}
	row, err = batched.Get(int64(0))
	if err != nil || row[3] != "moved-again" {
		t.Fatalf("Get(0) = %v, %v", row, err)
	}

	// A window over a superseded location must not resurface moved rows.
	old := index.Query{Window: geom.NewMBR(116.49, 39.59, 116.51, 39.61)}
	err = batched.ScanQuery(context.Background(), old, func(r exec.Row) bool {
		if r[0] == int64(60) {
			t.Fatal("superseded within-batch location of fid 60 still indexed")
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInsertBatchEmpty(t *testing.T) {
	tbl, cluster := newTestTable(t)
	if err := tbl.InsertBatch(nil); err != nil {
		t.Fatal(err)
	}
	if n := len(collectPairs(t, cluster)); n != 0 {
		t.Fatalf("empty batch wrote %d pairs", n)
	}
}
