package table

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"just/internal/exec"
	"just/internal/geom"
	"just/internal/index"
	"just/internal/kv"
)

// TestDecodeProjectedSubsets checks DecodeProjected against Decode for
// every subset of the full test schema (9 columns → 512 subsets),
// including a row with nulls: needed columns must match the full
// decode, skipped columns must stay nil.
func TestDecodeProjectedSubsets(t *testing.T) {
	codec := NewCodec(testColumns())
	rows := []exec.Row{testRow(5), testRow(42)}
	rows[1][1] = nil // null string
	rows[1][7] = nil // null compressed st_series
	for ri, row := range rows {
		data, err := codec.Encode(row)
		if err != nil {
			t.Fatal(err)
		}
		full, err := codec.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		n := len(testColumns())
		for mask := 0; mask < 1<<n; mask++ {
			needed := make([]bool, n)
			for i := 0; i < n; i++ {
				needed[i] = mask&(1<<i) != 0
			}
			got, err := codec.DecodeProjected(data, needed)
			if err != nil {
				t.Fatalf("row %d mask %03x: %v", ri, mask, err)
			}
			for i := 0; i < n; i++ {
				if !needed[i] {
					if got[i] != nil {
						t.Fatalf("row %d mask %03x: column %d decoded despite projection", ri, mask, i)
					}
					continue
				}
				if !reflect.DeepEqual(got[i], full[i]) {
					t.Fatalf("row %d mask %03x column %d: %v != %v", ri, mask, i, got[i], full[i])
				}
			}
		}
	}
}

// TestDecodeIntoSecondPass checks the two-phase decode used by the scan
// pipeline: a partial first pass followed by a wider second pass over
// the same row must not re-decode and must fill in the rest.
func TestDecodeIntoSecondPass(t *testing.T) {
	codec := NewCodec(testColumns())
	row := testRow(9)
	data, err := codec.Encode(row)
	if err != nil {
		t.Fatal(err)
	}
	full, err := codec.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	out := make(exec.Row, len(testColumns()))
	phase1 := make([]bool, len(testColumns()))
	phase1[2], phase1[3] = true, true // time, geom
	if err := codec.decodeInto(out, data, phase1); err != nil {
		t.Fatal(err)
	}
	if out[2] == nil || out[3] == nil || out[0] != nil {
		t.Fatalf("phase 1 decoded wrong columns: %v", out)
	}
	if err := codec.decodeInto(out, data, nil); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual([]any(out), []any(full)) {
		t.Fatalf("two-phase decode %v != full decode %v", out, full)
	}
}

func TestScanProjected(t *testing.T) {
	tbl, _ := newTestTable(t)
	for i := 0; i < 100; i++ {
		row := exec.Row{int64(i), int64(i) * hourMS, geom.Point{Lng: 116.4 + float64(i)*0.0001, Lat: 39.9}, "x"}
		if err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	q := index.Query{
		Window:  geom.NewMBR(116.39, 39.89, 116.42, 39.92),
		HasTime: true, TMin: 0, TMax: 100 * hourMS,
	}
	var fullIDs []int64
	if err := tbl.ScanQuery(context.Background(), q, func(r exec.Row) bool {
		fullIDs = append(fullIDs, r[0].(int64))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(fullIDs) == 0 {
		t.Fatal("ScanQuery found nothing")
	}
	// Project to fid only: the name column must not be decoded; the
	// filter columns (geom/time) are decoded by the filter pass.
	needed := []bool{true, false, false, false}
	var gotIDs []int64
	if err := tbl.ScanProjected(context.Background(), q, needed, func(r exec.Row) bool {
		if r[3] != nil {
			t.Fatalf("projected-out column decoded: %v", r)
		}
		if r[0] == nil {
			t.Fatalf("needed column missing: %v", r)
		}
		gotIDs = append(gotIDs, r[0].(int64))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(gotIDs) != len(fullIDs) {
		t.Fatalf("projected scan found %d rows, full scan %d", len(gotIDs), len(fullIDs))
	}
}

// TestScanDecodeErrorPropagates corrupts a stored value and checks the
// decode error surfaces from inside the scan workers.
func TestScanDecodeErrorPropagates(t *testing.T) {
	tbl, cluster := newTestTable(t)
	for i := 0; i < 50; i++ {
		row := exec.Row{int64(i), int64(i) * hourMS, geom.Point{Lng: 116.4, Lat: 39.9}, "x"}
		if err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite one row's stored value in every index copy with a
	// truncated encoding: the null bitmap claims every column present
	// but no field bytes follow.
	var victims [][]byte
	if err := cluster.ScanRange(kv.KeyRange{}, func(k, v []byte) bool {
		victims = append(victims, append([]byte(nil), k...))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(victims) == 0 {
		t.Fatal("no stored keys")
	}
	for _, k := range victims {
		if err := cluster.Put(k, []byte{0x00}); err != nil {
			t.Fatal(err)
		}
	}
	err := tbl.FullScan(context.Background(), func(exec.Row) bool { return true })
	if !errors.Is(err, ErrBadRow) {
		t.Fatalf("FullScan err = %v, want ErrBadRow", err)
	}
	err = tbl.ScanQuery(context.Background(), index.Query{Window: geom.WorldMBR}, func(exec.Row) bool { return true })
	if !errors.Is(err, ErrBadRow) {
		t.Fatalf("ScanQuery err = %v, want ErrBadRow", err)
	}
}

func TestFIDBytesFastPaths(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{"taxi-7", "taxi-7"},
		{int64(-42), "-42"},
		{int64(0), "0"},
		{uint32(7), "7"}, // fmt fallback
		{float64(1.5), "1.5"},
	}
	for _, c := range cases {
		if got := string(FIDBytes(c.in)); got != c.want {
			t.Errorf("FIDBytes(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	// []byte keys canonicalize to their own contents.
	if got := string(FIDBytes([]byte{0x01, 0xFF})); got != string([]byte{0x01, 0xFF}) {
		t.Errorf("FIDBytes([]byte) = %x", got)
	}
}
