package table

import (
	"fmt"
	"sort"

	"just/internal/exec"
	"just/internal/geom"
)

// PluginSpec predefines the storage schema and default indexes of a data
// structure (Section IV-D, plugin tables): users "CREATE TABLE t AS
// trajectory" and get the whole layout for free. Rows of a plugin table
// are complete entities; the implicit `item` pseudo-field denotes the
// whole row for 1-N analysis operations.
type PluginSpec struct {
	Name    string
	Columns []Column
	Indexes []IndexDesc
	// FidColumn etc. mirror Desc's field roles.
	FidColumn     string
	GeomColumn    string
	TimeColumn    string
	EndTimeColumn string
}

var plugins = map[string]PluginSpec{}

// RegisterPlugin installs a plugin spec; built-ins register at init.
func RegisterPlugin(p PluginSpec) { plugins[p.Name] = p }

// LookupPlugin resolves a plugin type name.
func LookupPlugin(name string) (PluginSpec, bool) {
	p, ok := plugins[name]
	return p, ok
}

// PluginNames lists registered plugin types.
func PluginNames() []string {
	out := make([]string, 0, len(plugins))
	for n := range plugins {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Trajectory column names of the built-in "trajectory" plugin (Fig. 6:
// MBR, start/end points, start/end times, and a compressed GPS list).
const (
	TrajColID         = "tid"
	TrajColMBR        = "mbr"
	TrajColStartPoint = "start_point"
	TrajColEndPoint   = "end_point"
	TrajColStartTime  = "start_time"
	TrajColEndTime    = "end_time"
	TrajColGPSList    = "gps_list"
)

func init() {
	RegisterPlugin(PluginSpec{
		Name: "trajectory",
		Columns: []Column{
			{Name: TrajColID, Type: exec.TypeString, PrimaryKey: true},
			{Name: TrajColMBR, Type: exec.TypeGeometry, SRID: 4326},
			{Name: TrajColStartPoint, Type: exec.TypeGeometry, SRID: 4326},
			{Name: TrajColEndPoint, Type: exec.TypeGeometry, SRID: 4326},
			{Name: TrajColStartTime, Type: exec.TypeTime},
			{Name: TrajColEndTime, Type: exec.TypeTime},
			{Name: TrajColGPSList, Type: exec.TypeSTSeries, Compress: "lz4"},
		},
		// Table III: XZ2 on MBR, XZ2T on MBR and start time.
		Indexes: []IndexDesc{
			{Strategy: "attr", ID: 0},
			{Strategy: "xz2", ID: 1},
			{Strategy: "xz2t", ID: 2},
		},
		FidColumn:     TrajColID,
		GeomColumn:    TrajColMBR,
		TimeColumn:    TrajColStartTime,
		EndTimeColumn: TrajColEndTime,
	})
}

// Trajectory is the native Go view of a trajectory-plugin row.
type Trajectory struct {
	ID     string
	Points []geom.TPoint
}

// MBR returns the trajectory's spatial footprint.
func (t *Trajectory) MBR() geom.MBR {
	if len(t.Points) == 0 {
		return geom.MBR{}
	}
	m := t.Points[0].Point.MBR()
	for _, p := range t.Points[1:] {
		m = m.ExtendPoint(p.Point)
	}
	return m
}

// Line returns the trajectory's path as a LineString.
func (t *Trajectory) Line() *geom.LineString {
	pts := make([]geom.Point, len(t.Points))
	for i, p := range t.Points {
		pts[i] = p.Point
	}
	return &geom.LineString{Points: pts}
}

// Row converts the trajectory to a trajectory-plugin row.
func (t *Trajectory) Row() (exec.Row, error) {
	if len(t.Points) == 0 {
		return nil, fmt.Errorf("table: trajectory %q has no points", t.ID)
	}
	mbr := t.MBR()
	return exec.Row{
		t.ID,
		geom.PolygonFromMBR(mbr),
		t.Points[0].Point,
		t.Points[len(t.Points)-1].Point,
		t.Points[0].T,
		t.Points[len(t.Points)-1].T,
		t.Points,
	}, nil
}

// TrajectoryFromRow rebuilds a Trajectory from a plugin row (the `item`
// implicit field materialized).
func TrajectoryFromRow(row exec.Row) (*Trajectory, error) {
	if len(row) < 7 {
		return nil, fmt.Errorf("table: not a trajectory row (arity %d)", len(row))
	}
	id, ok := row[0].(string)
	if !ok {
		return nil, fmt.Errorf("table: trajectory id is %T", row[0])
	}
	pts, ok := row[6].([]geom.TPoint)
	if !ok {
		return nil, fmt.Errorf("table: gps_list is %T", row[6])
	}
	return &Trajectory{ID: id, Points: pts}, nil
}

// NewDescFromPlugin instantiates a catalog descriptor for a plugin table.
func NewDescFromPlugin(user, name, plugin string) (*Desc, error) {
	spec, ok := LookupPlugin(plugin)
	if !ok {
		return nil, fmt.Errorf("table: unknown plugin type %q (have %v)", plugin, PluginNames())
	}
	return &Desc{
		Name:          name,
		User:          user,
		Kind:          KindPlugin,
		Plugin:        plugin,
		Columns:       append([]Column{}, spec.Columns...),
		Indexes:       append([]IndexDesc{}, spec.Indexes...),
		FidColumn:     spec.FidColumn,
		GeomColumn:    spec.GeomColumn,
		TimeColumn:    spec.TimeColumn,
		EndTimeColumn: spec.EndTimeColumn,
	}, nil
}
