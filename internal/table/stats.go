package table

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"just/internal/exec"
	"just/internal/index"
	"just/internal/kv"
)

// statsSampleSize is the per-index key sample kept by CollectStats. The
// sorted sample is an equi-depth histogram over the index's key space:
// with k sample points, consecutive points bracket Keys/k entries, so
// range selectivity resolves to about 1/k granularity.
const statsSampleSize = 1024

// rangeSeekCost charges each planned key range a fixed overhead, in
// key-read equivalents, for the per-range scan task setup and block
// seeks. It keeps the planner from preferring a thousand near-empty
// ranges over one slightly larger contiguous scan.
const rangeSeekCost = 8.0

// TableStats is the optimizer's view of a table's physical key
// distribution, collected by CollectStats and persisted in the catalog
// descriptor. Plans fall back to fixed heuristics when it is absent;
// it is advisory only and never affects result correctness.
type TableStats struct {
	CollectedAtMS int64 `json:"collected_at_ms"`
	// RowCount is the live row count (attribute-index entries) at
	// collection time.
	RowCount int64                 `json:"row_count"`
	Indexes  map[uint8]*IndexStats `json:"indexes"`
	// StringSampled is the number of rows whose string columns were
	// sampled, and StringDistinct the per-column distinct value counts
	// seen in that sample (keyed by column name). They drive the
	// dictionary-interning decision: a column whose sampled cardinality
	// is a small fraction of the sample is worth one canonical string
	// per distinct value instead of one allocation per row.
	StringSampled  int64            `json:"string_sampled,omitempty"`
	StringDistinct map[string]int64 `json:"string_distinct,omitempty"`
}

// IndexStats summarizes one index's key population.
type IndexStats struct {
	// Keys is the number of live entries under the index prefix.
	Keys int64 `json:"keys"`
	// Sample is a sorted uniform sample of strategy-local keys (the
	// 5-byte table/index prefix stripped). Because temporal strategies
	// embed the time period and all SFC strategies embed the curve
	// address in the key, the sample doubles as a selectivity histogram
	// over both period occupancy and curve-space occupancy.
	Sample [][]byte `json:"sample"`
}

// estimateKeys returns the expected number of index entries inside the
// strategy-local key range [start, end).
func (s *IndexStats) estimateKeys(start, end []byte) float64 {
	if s.Keys == 0 || len(s.Sample) == 0 {
		return 0
	}
	lo := 0
	if start != nil {
		lo = sort.Search(len(s.Sample), func(i int) bool {
			return bytes.Compare(s.Sample[i], start) >= 0
		})
	}
	hi := len(s.Sample)
	if end != nil {
		hi = sort.Search(len(s.Sample), func(i int) bool {
			return bytes.Compare(s.Sample[i], end) >= 0
		})
	}
	if hi < lo {
		hi = lo
	}
	return float64(hi-lo) / float64(len(s.Sample)) * float64(s.Keys)
}

// CollectStats scans every index's key range (keys only — values are
// never decoded) and builds fresh statistics: exact entry counts plus a
// reservoir key sample per index. The reservoir is seeded
// deterministically so repeated collections over unchanged data agree.
func (t *Table) CollectStats(ctx context.Context) (*TableStats, error) {
	st := &TableStats{
		CollectedAtMS: time.Now().UnixMilli(),
		Indexes:       make(map[uint8]*IndexStats, len(t.Desc.Indexes)),
	}
	for _, id := range t.Desc.Indexes {
		prefix := t.keyPrefix(id.ID)
		is := &IndexStats{}
		rng := rand.New(rand.NewSource(1))
		var sample [][]byte
		err := kv.ScanRangesFunc(ctx, t.cluster,
			[]kv.KeyRange{{Start: prefix, End: nextKeyPrefix(prefix)}},
			func(k, _ []byte) ([]byte, bool, error) {
				return append([]byte(nil), k[len(prefix):]...), true, nil
			},
			func(k []byte) bool {
				is.Keys++
				if len(sample) < statsSampleSize {
					sample = append(sample, k)
				} else if j := rng.Int63n(is.Keys); j < statsSampleSize {
					sample[j] = k
				}
				return true
			})
		if err != nil {
			return nil, exec.MapCtxErr(err)
		}
		sort.Slice(sample, func(i, j int) bool { return bytes.Compare(sample[i], sample[j]) < 0 })
		is.Sample = sample
		st.Indexes[id.ID] = is
		if id.ID == t.attrID {
			st.RowCount = is.Keys
		}
	}
	if err := t.sampleStringCardinality(ctx, st); err != nil {
		return nil, err
	}
	return st, nil
}

// sampleStringCardinality decodes the string columns of a bounded prefix
// of the attribute index (values are decoded nowhere else in stats
// collection) and records per-column distinct counts.
func (t *Table) sampleStringCardinality(ctx context.Context, st *TableStats) error {
	var strIdx []int
	for i, col := range t.Desc.Columns {
		if col.Type == exec.TypeString {
			strIdx = append(strIdx, i)
		}
	}
	if len(strIdx) == 0 {
		return nil
	}
	mask := make([]bool, len(t.Desc.Columns))
	for _, i := range strIdx {
		mask[i] = true
	}
	distinct := make([]map[string]struct{}, len(strIdx))
	for i := range distinct {
		distinct[i] = make(map[string]struct{})
	}
	prefix := t.keyPrefix(t.attrID)
	var sampled int64
	err := kv.ScanRangesFunc(ctx, t.cluster,
		[]kv.KeyRange{{Start: prefix, End: nextKeyPrefix(prefix)}},
		func(_, v []byte) ([]byte, bool, error) {
			return append([]byte(nil), v...), true, nil
		},
		func(v []byte) bool {
			row, err := t.codec.DecodeProjected(v, mask)
			if err != nil {
				return true // skip undecodable rows; scrub owns them
			}
			for j, ci := range strIdx {
				if s, ok := row[ci].(string); ok {
					distinct[j][s] = struct{}{}
				}
			}
			sampled++
			return sampled < statsSampleSize
		})
	if err != nil {
		return exec.MapCtxErr(err)
	}
	st.StringSampled = sampled
	st.StringDistinct = make(map[string]int64, len(strIdx))
	for j, ci := range strIdx {
		st.StringDistinct[t.Desc.Columns[ci].Name] = int64(len(distinct[j]))
	}
	return nil
}

// internSampleMin is the smallest string sample the interning decision
// trusts; internMaxFraction caps a dictionary-worthy column's sampled
// cardinality at sampled/internMaxFraction.
const (
	internSampleMin   = 64
	internMaxFraction = 8
)

// internDecision derives per-column interning flags from a statistics
// snapshot; nil when no column qualifies.
func internDecision(cols []Column, st *TableStats) *[]bool {
	if st == nil || st.StringSampled < internSampleMin {
		return nil
	}
	flags := make([]bool, len(cols))
	any := false
	for i, col := range cols {
		if col.Type != exec.TypeString {
			continue
		}
		d, ok := st.StringDistinct[col.Name]
		if ok && d > 0 && d <= st.StringSampled/internMaxFraction {
			flags[i] = true
			any = true
		}
	}
	if !any {
		return nil
	}
	return &flags
}

// SetStats installs statistics for the planner (atomically; concurrent
// scans keep using the snapshot they started with) and re-derives the
// dictionary-interning flags the columnar decode path consults.
func (t *Table) SetStats(st *TableStats) {
	t.stats.Store(st)
	t.internCols.Store(internDecision(t.Desc.Columns, st))
}

// Stats returns the installed statistics, or nil before any collection.
func (t *Table) Stats() *TableStats { return t.stats.Load() }

// RefreshStats recollects statistics and installs them on the table.
// The caller (the engine) persists the returned snapshot in the
// catalog so it survives restarts.
func (t *Table) RefreshStats(ctx context.Context) (*TableStats, error) {
	st, err := t.CollectStats(ctx)
	if err != nil {
		return nil, err
	}
	t.SetStats(st)
	return st, nil
}

// AccessPath is a planned physical access: the chosen index, its
// prefixed key ranges, and the statistics estimate that picked it.
type AccessPath struct {
	// Strategy is the index strategy name ("z2t", "xz2", ...), or
	// "attr" for the attribute-index full scan.
	Strategy string
	IndexID  uint8
	Ranges   []kv.KeyRange
	// EstKeys is the estimated number of index entries the plan reads;
	// -1 when the path was chosen heuristically (no statistics).
	EstKeys float64
}

// PlanAccess chooses the access path for q. With statistics installed
// the choice is cost-based: every index strategy that can serve the
// query — plus the attribute-index full scan — is planned, each plan
// is costed as estimated entries read plus a per-range seek charge,
// and the cheapest wins. Without statistics it falls back to the fixed
// heuristic (temporal index when the query has time bounds, else
// spatial), which is also the safety net when statistics exist but no
// candidate plans cleanly.
func (t *Table) PlanAccess(q index.Query) (AccessPath, error) {
	if st := t.Stats(); st != nil {
		if p, ok := t.planWithStats(st, q); ok {
			return p, nil
		}
	}
	return t.planHeuristic(q)
}

func (t *Table) planWithStats(st *TableStats, q index.Query) (AccessPath, bool) {
	var best AccessPath
	bestCost := math.Inf(1)
	found := false
	// The attribute full scan is always a candidate: for a window
	// covering most of the data it beats thousands of curve ranges.
	if as, ok := st.Indexes[t.attrID]; ok {
		prefix := t.keyPrefix(t.attrID)
		best = AccessPath{
			Strategy: "attr",
			IndexID:  t.attrID,
			Ranges:   []kv.KeyRange{{Start: prefix, End: nextKeyPrefix(prefix)}},
			EstKeys:  float64(as.Keys),
		}
		bestCost = float64(as.Keys) + rangeSeekCost
		found = true
	}
	for i, s := range t.strategies {
		id := t.Desc.Indexes[indexSlot(t.Desc, i)].ID
		is, ok := st.Indexes[id]
		if !ok {
			continue
		}
		planQ := q
		if s.Temporal() && !q.HasTime {
			planQ.HasTime = true
			planQ.TMin = t.Desc.MinTimeMS
			planQ.TMax = t.Desc.MaxTimeMS
		}
		ranges, err := s.Plan(planQ)
		if err != nil {
			continue // this strategy cannot serve this query shape
		}
		var est float64
		for _, r := range ranges {
			est += is.estimateKeys(r.Start, r.End)
		}
		cost := est + float64(len(ranges))*rangeSeekCost
		if cost < bestCost {
			prefix := t.keyPrefix(id)
			full := make([]kv.KeyRange, len(ranges))
			for j, r := range ranges {
				full[j] = prefixRange(prefix, r)
			}
			best = AccessPath{Strategy: s.Name(), IndexID: id, Ranges: full, EstKeys: est}
			bestCost = cost
			found = true
		}
	}
	return best, found
}

// planHeuristic is the statistics-free path: the pre-statistics fixed
// choice, kept as the fallback.
func (t *Table) planHeuristic(q index.Query) (AccessPath, error) {
	s, indexID, ok := t.chooseStrategy(q)
	if !ok {
		prefix := t.keyPrefix(t.attrID)
		return AccessPath{
			Strategy: "attr",
			IndexID:  t.attrID,
			Ranges:   []kv.KeyRange{{Start: prefix, End: nextKeyPrefix(prefix)}},
			EstKeys:  -1,
		}, nil
	}
	planQ := q
	if s.Temporal() && !q.HasTime {
		planQ.HasTime = true
		planQ.TMin = t.Desc.MinTimeMS
		planQ.TMax = t.Desc.MaxTimeMS
	}
	ranges, err := s.Plan(planQ)
	if err != nil {
		return AccessPath{}, err
	}
	prefix := t.keyPrefix(indexID)
	full := make([]kv.KeyRange, len(ranges))
	for i, r := range ranges {
		full[i] = prefixRange(prefix, r)
	}
	return AccessPath{Strategy: s.Name(), IndexID: indexID, Ranges: full, EstKeys: -1}, nil
}

// statsPtr is the lock-free holder Table embeds (kept tiny so table.go
// stays focused on the data path).
type statsPtr = atomic.Pointer[TableStats]
