package table

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"just/internal/compress"
	"just/internal/exec"
	"just/internal/geom"
	"just/internal/index"
	"just/internal/kv"
)

// Table binds a catalog descriptor to the storage cluster: it knows how
// to encode rows, build every configured index key, and plan scans. It
// is the runtime behind both common and plugin tables.
type Table struct {
	Desc    *Desc
	codec   *Codec
	cluster kv.Store

	strategies []index.Strategy // parallel to Desc.Indexes
	attr       *index.AttrStrategy
	attrID     uint8

	fidIdx  int
	geomIdx int // -1 when the table has no geometry
	timeIdx int // -1 when the table has no time column
	endIdx  int

	// stats holds the planner statistics snapshot (see stats.go); nil
	// until the first collection, when PlanAccess goes cost-based.
	stats statsPtr
	// internCols flags string columns whose sampled cardinality is low
	// enough that the columnar decode path interns their values through
	// a per-scan-task dictionary (see SetStats); nil disables interning.
	internCols atomic.Pointer[[]bool]
}

// IndexConfig carries strategy tunables shared by a table's indexes.
type IndexConfig = index.Config

// Open binds a descriptor to the storage fabric (the in-process
// cluster, or a router over networked region servers).
func Open(d *Desc, cluster kv.Store, cfg IndexConfig) (*Table, error) {
	t := &Table{
		Desc:    d,
		codec:   NewCodec(d.Columns),
		cluster: cluster,
		fidIdx:  -1, geomIdx: -1, timeIdx: -1, endIdx: -1,
	}
	schema := d.Schema()
	if d.FidColumn != "" {
		t.fidIdx = schema.Index(d.FidColumn)
	}
	if t.fidIdx < 0 {
		return nil, fmt.Errorf("%w: table %s has no primary key column", ErrBadSchema, d.Name)
	}
	if d.GeomColumn != "" {
		t.geomIdx = schema.Index(d.GeomColumn)
	}
	if d.TimeColumn != "" {
		t.timeIdx = schema.Index(d.TimeColumn)
	}
	if d.EndTimeColumn != "" {
		t.endIdx = schema.Index(d.EndTimeColumn)
	}
	for _, id := range d.Indexes {
		if id.Strategy == "attr" {
			t.attr = index.NewAttr()
			t.attrID = id.ID
			continue
		}
		c := cfg
		if id.PeriodMS > 0 {
			c.Period = time.Duration(id.PeriodMS) * time.Millisecond
		}
		s, ok := index.New(id.Strategy, c)
		if !ok {
			return nil, fmt.Errorf("table: unknown index strategy %q", id.Strategy)
		}
		t.strategies = append(t.strategies, s)
	}
	if t.attr == nil {
		return nil, fmt.Errorf("%w: table %s missing attr index", ErrBadSchema, d.Name)
	}
	if d.Stats != nil {
		// SetStats (not a bare store) so the persisted snapshot also
		// re-derives the dictionary-interning flags on reopen.
		t.SetStats(d.Stats)
	}
	// Every index copy stores the same encoded row, so one extractor
	// serves all of the table's key prefixes: SSTables flushed or
	// compacted from here on carry per-block [min,max] record-time zone
	// maps, which time-windowed scans use to skip blocks before disk
	// read and decompression.
	if t.timeIdx >= 0 {
		zfn := func(_, value []byte) (int64, int64, bool) {
			return t.codec.DecodeTimeBounds(value, t.timeIdx, t.endIdx)
		}
		for _, id := range d.Indexes {
			cluster.RegisterZoneExtractor(t.keyPrefix(id.ID), zfn)
		}
	}
	return t, nil
}

// Schema returns the table's exec schema.
func (t *Table) Schema() *exec.Schema { return t.Desc.Schema() }

// keyPrefix builds [tableID u32][indexID u8].
func (t *Table) keyPrefix(indexID uint8) []byte {
	id := t.Desc.TableID
	return []byte{byte(id >> 24), byte(id >> 16), byte(id >> 8), byte(id), indexID}
}

// prefixRange re-anchors a strategy-local key range under the table and
// index key prefix.
func prefixRange(prefix []byte, r kv.KeyRange) kv.KeyRange {
	out := kv.KeyRange{
		Start: append(append([]byte(nil), prefix...), r.Start...),
	}
	if r.End != nil {
		out.End = append(append([]byte(nil), prefix...), r.End...)
	} else {
		out.End = nextKeyPrefix(prefix)
	}
	return out
}

func nextKeyPrefix(p []byte) []byte {
	out := append([]byte(nil), p...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

// FIDBytes canonicalizes a primary-key value. The common key types are
// handled without reflection; everything else keeps the fmt rendering
// (which []byte deliberately avoids — "%v" prints a byte slice as its
// decimal elements, not its contents).
func FIDBytes(v any) []byte {
	switch v := v.(type) {
	case string:
		return []byte(v)
	case int64:
		return strconv.AppendInt(nil, v, 10)
	case []byte:
		return append([]byte(nil), v...)
	}
	return []byte(fmt.Sprintf("%v", v))
}

// record extracts the indexable digest from a row.
func (t *Table) record(row exec.Row) (index.Record, error) {
	rec := index.Record{FID: FIDBytes(row[t.fidIdx])}
	if t.geomIdx >= 0 {
		if g, ok := row[t.geomIdx].(geom.Geometry); ok {
			rec.Geom = g
		}
	}
	if t.timeIdx >= 0 {
		if ts, ok := row[t.timeIdx].(int64); ok {
			rec.Start, rec.End = ts, ts
		}
	}
	if t.endIdx >= 0 {
		if te, ok := row[t.endIdx].(int64); ok {
			rec.End = te
		}
	}
	return rec, nil
}

// Insert writes the row into the attribute index and every spatial
// index. Re-inserting the same fid overwrites all copies — the
// update-enabled property: keys depend only on the record itself
// (Section I, characteristic 3). When the update moves the record in
// space or time, the superseded index entries are tombstoned first
// (GeoMesa's delete-before-write upsert); the attribute index's bloom
// filters make the existence probe cheap for fresh fids.
func (t *Table) Insert(row exec.Row) error {
	return t.InsertCtx(context.Background(), row)
}

// InsertCtx is Insert bounded by ctx: on the networked store the
// remaining budget rides each kv request to the region servers.
func (t *Table) InsertCtx(ctx context.Context, row exec.Row) error {
	rec, err := t.record(row)
	if err != nil {
		return err
	}
	value, err := t.codec.Encode(row)
	if err != nil {
		return err
	}
	newKeys := make([][]byte, len(t.strategies))
	for i, s := range t.strategies {
		if rec.Geom == nil {
			continue // non-spatial rows live only in the attribute index
		}
		key, err := s.Key(rec)
		if err != nil {
			return err
		}
		newKeys[i] = append(t.keyPrefix(t.Desc.Indexes[indexSlot(t.Desc, i)].ID), key...)
	}
	// Tombstone index entries of a previous version that landed on
	// different keys (the record moved).
	attrKey := append(t.keyPrefix(t.attrID), t.attr.KeyForFID(rec.FID)...)
	if oldValue, err := t.cluster.GetCtx(ctx, attrKey); err == nil {
		oldRow, err := t.codec.Decode(oldValue)
		if err != nil {
			return err
		}
		oldRec, err := t.record(oldRow)
		if err != nil {
			return err
		}
		for i, s := range t.strategies {
			if oldRec.Geom == nil {
				continue
			}
			oldKey, err := s.Key(oldRec)
			if err != nil {
				return err
			}
			full := append(t.keyPrefix(t.Desc.Indexes[indexSlot(t.Desc, i)].ID), oldKey...)
			if newKeys[i] == nil || !bytes.Equal(full, newKeys[i]) {
				if err := t.cluster.DeleteCtx(ctx, full); err != nil {
					return err
				}
			}
		}
	} else if err != kv.ErrNotFound {
		return err
	}
	if err := t.cluster.PutCtx(ctx, attrKey, value); err != nil {
		return err
	}
	for _, key := range newKeys {
		if key == nil {
			continue
		}
		if err := t.cluster.PutCtx(ctx, key, value); err != nil {
			return err
		}
	}
	return nil
}

// InsertBatch writes rows through the batched group-commit write path:
// rows are encoded and compressed in parallel across a worker pool, the
// previous versions for the delete-before-write upsert are probed with
// one Cluster.MultiGet, and all mutations — tombstones for moved index
// entries, the attribute copy, every spatial index copy — are emitted
// as one kv.WriteBatch, so each storage region takes its lock and syncs
// its WAL once per batch instead of once per key. Semantically it
// matches calling Insert per row, including upserts of fids repeated
// within the batch (later rows win).
func (t *Table) InsertBatch(rows []exec.Row) error {
	return t.InsertBatchCtx(context.Background(), rows)
}

// InsertBatchCtx is InsertBatch bounded by ctx.
func (t *Table) InsertBatchCtx(ctx context.Context, rows []exec.Row) error {
	if len(rows) == 0 {
		return nil
	}
	type prepRow struct {
		rec     index.Record
		value   []byte
		attrKey []byte
		newKeys [][]byte // parallel to t.strategies; nil for non-spatial rows
	}
	preps := make([]prepRow, len(rows))
	// Stage 1: encode + compress + index-key computation, in parallel
	// (strategies are stateless after construction).
	err := parallelRows(len(rows), func(i int) error {
		rec, err := t.record(rows[i])
		if err != nil {
			return err
		}
		value, err := t.codec.Encode(rows[i])
		if err != nil {
			return err
		}
		p := prepRow{rec: rec, value: value}
		p.attrKey = append(t.keyPrefix(t.attrID), t.attr.KeyForFID(rec.FID)...)
		p.newKeys = make([][]byte, len(t.strategies))
		for si, s := range t.strategies {
			if rec.Geom == nil {
				continue
			}
			key, err := s.Key(rec)
			if err != nil {
				return err
			}
			p.newKeys[si] = append(t.keyPrefix(t.Desc.Indexes[indexSlot(t.Desc, si)].ID), key...)
		}
		preps[i] = p
		return nil
	})
	if err != nil {
		return err
	}
	// Stage 2: one batched existence probe for the upsert path.
	attrKeys := make([][]byte, len(rows))
	for i := range preps {
		attrKeys[i] = preps[i].attrKey
	}
	oldVals, err := t.cluster.MultiGetCtx(ctx, attrKeys)
	if err != nil {
		return err
	}
	// Stage 3: decode the found previous versions and recompute their
	// index keys, again in parallel.
	oldKeys := make([][][]byte, len(rows))
	err = parallelRows(len(rows), func(i int) error {
		if oldVals[i] == nil {
			return nil
		}
		oldRow, err := t.codec.Decode(oldVals[i])
		if err != nil {
			return err
		}
		oldRec, err := t.record(oldRow)
		if err != nil {
			return err
		}
		if oldRec.Geom == nil {
			return nil
		}
		keys := make([][]byte, len(t.strategies))
		for si, s := range t.strategies {
			key, err := s.Key(oldRec)
			if err != nil {
				return err
			}
			keys[si] = append(t.keyPrefix(t.Desc.Indexes[indexSlot(t.Desc, si)].ID), key...)
		}
		oldKeys[i] = keys
		return nil
	})
	if err != nil {
		return err
	}
	// Stage 4: assemble the batch in row order (later mutations win in
	// the memtable, so repeated fids resolve exactly as sequential
	// Inserts would). A fid already written earlier in this batch uses
	// that row's keys as the previous version — the MultiGet probe saw
	// only the pre-batch state.
	var batch kv.WriteBatch
	batch.Grow(len(rows) * (1 + len(t.strategies)))
	lastByFID := make(map[string]int, len(rows))
	for i := range preps {
		prior := oldKeys[i]
		if j, ok := lastByFID[string(preps[i].rec.FID)]; ok {
			prior = preps[j].newKeys
		}
		for si, old := range prior {
			if old == nil {
				continue
			}
			if preps[i].newKeys[si] == nil || !bytes.Equal(old, preps[i].newKeys[si]) {
				batch.Delete(old)
			}
		}
		batch.Put(preps[i].attrKey, preps[i].value)
		for _, key := range preps[i].newKeys {
			if key != nil {
				batch.Put(key, preps[i].value)
			}
		}
		lastByFID[string(preps[i].rec.FID)] = i
	}
	return t.cluster.ApplyCtx(ctx, &batch)
}

// parallelRows runs fn(i) for i in [0, n) across GOMAXPROCS workers and
// returns the first error (work-stealing via an atomic cursor, so a few
// expensive rows — big gzip'd trajectories — don't skew one worker).
func parallelRows(n int, fn func(int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// indexSlot maps the i-th non-attr strategy back to its Desc.Indexes
// position.
func indexSlot(d *Desc, i int) int {
	n := 0
	for j, id := range d.Indexes {
		if id.Strategy == "attr" {
			continue
		}
		if n == i {
			return j
		}
		n++
	}
	return -1
}

// Get fetches a row by primary key.
func (t *Table) Get(fid any) (exec.Row, error) {
	return t.GetCtx(context.Background(), fid)
}

// GetCtx is Get bounded by ctx.
func (t *Table) GetCtx(ctx context.Context, fid any) (exec.Row, error) {
	key := append(t.keyPrefix(t.attrID), t.attr.KeyForFID(FIDBytes(fid))...)
	v, err := t.cluster.GetCtx(ctx, key)
	if err != nil {
		return nil, err
	}
	return t.codec.Decode(v)
}

// Delete removes a row (all index copies) by primary key.
func (t *Table) Delete(fid any) error {
	row, err := t.Get(fid)
	if err != nil {
		return err
	}
	rec, err := t.record(row)
	if err != nil {
		return err
	}
	for i, s := range t.strategies {
		if rec.Geom == nil {
			continue
		}
		key, err := s.Key(rec)
		if err != nil {
			return err
		}
		full := append(t.keyPrefix(t.Desc.Indexes[indexSlot(t.Desc, i)].ID), key...)
		if err := t.cluster.Delete(full); err != nil {
			return err
		}
	}
	attrKey := append(t.keyPrefix(t.attrID), t.attr.KeyForFID(rec.FID)...)
	return t.cluster.Delete(attrKey)
}

// chooseStrategy picks the most selective index for a query: a temporal
// strategy when the query has time bounds and one exists, otherwise a
// spatial one.
func (t *Table) chooseStrategy(q index.Query) (index.Strategy, uint8, bool) {
	var spatial, temporal index.Strategy
	var spatialID, temporalID uint8
	for i, s := range t.strategies {
		id := t.Desc.Indexes[indexSlot(t.Desc, i)].ID
		if s.Temporal() {
			if temporal == nil {
				temporal, temporalID = s, id
			}
		} else if spatial == nil {
			spatial, spatialID = s, id
		}
	}
	if q.HasTime && temporal != nil {
		return temporal, temporalID, true
	}
	if spatial != nil {
		return spatial, spatialID, true
	}
	if temporal != nil {
		return temporal, temporalID, true
	}
	return nil, 0, false
}

// ScanQuery streams rows matching the spatio-temporal window: it plans
// key ranges on the best index, SCANs them in parallel, decodes, and
// post-filters on the record's MBR and time span (the curve-level
// over-approximation is removed here; exact geometry refinement belongs
// to the caller, which knows the predicate). Every column is decoded.
func (t *Table) ScanQuery(ctx context.Context, q index.Query, emit func(exec.Row) bool) error {
	return t.ScanProjected(ctx, q, nil, emit)
}

// ScanProjected is ScanQuery with projection pushdown: needed marks the
// columns the caller will read (nil = all). It is a row-compatibility
// shim over ScanBatches — rows are boxed out of the column batches at
// the emit edge. Columns outside needed (and outside the window filter
// set, which is always decoded) are left nil in emitted rows.
func (t *Table) ScanProjected(ctx context.Context, q index.Query, needed []bool, emit func(exec.Row) bool) error {
	return t.ScanBatches(ctx, q, needed, func(b *exec.ColumnBatch) bool {
		for i := 0; i < b.Len(); i++ {
			if !emit(b.RowAt(i)) {
				return false
			}
		}
		return true
	})
}

// ScanBatches is the columnar scan pipeline: key ranges are planned on
// the cheapest index (PlanAccess), zone hints narrow which SSTable
// blocks are read at all, and each scan task decodes survivors straight
// into ColumnBatch vectors (kv.ScanCollect) — no per-row boxing on the
// hot path. Filtering is staged by cost: record time is pre-checked
// from the encoded bytes (Codec.DecodeTimeBounds, no allocation), the
// filter columns of time-survivors are decoded and checked against the
// window, and only rows passing both materialize their remaining
// needed columns — a trajectory rejected by the time window never
// inflates its gzip'd GPS list.
//
// Batches handed to emit are valid only during the call and are
// charged against the per-query memory budget (exec.QueryFromContext)
// while in flight.
func (t *Table) ScanBatches(ctx context.Context, q index.Query, needed []bool, emit func(*exec.ColumnBatch) bool) error {
	path, err := t.PlanAccess(q)
	if err != nil {
		return err
	}
	ranges := path.Ranges
	if q.HasTime && t.timeIdx >= 0 {
		for i := range ranges {
			ranges[i].Zoned, ranges[i].ZMin, ranges[i].ZMax = true, q.TMin, q.TMax
		}
	}
	schema := t.Schema()
	filter := t.filterCols()
	// rest = needed ∪ filter, minus what the filter pass already decoded.
	rest := make([]bool, len(t.Desc.Columns))
	for i := range rest {
		rest[i] = (needed == nil || needed[i]) && (filter == nil || !filter[i])
	}
	qry := exec.QueryFromContext(ctx)
	newTask := func() kv.TaskCollector[*exec.ColumnBatch] {
		// Batch capacity ramps up (32 → BatchRows): a LIMIT-style query
		// that stops after a few rows, or one running under a tight
		// memory budget, only ever pays for a small first batch, while a
		// long scan reaches full-size batches within three flushes.
		c := exec.BatchRows / 8
		b := exec.NewColumnBatch(schema, c)
		// Per-task string dictionaries for columns whose sampled
		// cardinality marked them worth interning. A task decodes its
		// rows sequentially, so an unshared Dict needs no locking, and
		// its lifetime (one scan task) bounds the memory it can hold.
		var interns []*compress.Dict
		if ic := t.internCols.Load(); ic != nil {
			interns = make([]*compress.Dict, len(t.Desc.Columns))
			for i, on := range *ic {
				if on && (rest[i] || (filter != nil && filter[i])) {
					interns[i] = new(compress.Dict)
				}
			}
		}
		add := func(_, v []byte) (*exec.ColumnBatch, bool, error) {
			if filter != nil && q.HasTime && t.timeIdx >= 0 {
				if tmin, tmax, ok := t.codec.DecodeTimeBounds(v, t.timeIdx, t.endIdx); ok && (tmin > q.TMax || tmax < q.TMin) {
					return nil, false, nil
				}
			}
			ri := b.Grow()
			if filter != nil {
				if err := t.codec.DecodeIntoBatch(b, ri, v, filter, interns); err != nil {
					return nil, false, err
				}
				if !t.matchesAt(b, ri, q) {
					b.Ungrow()
					return nil, false, nil
				}
			}
			if err := t.codec.DecodeIntoBatch(b, ri, v, rest, interns); err != nil {
				return nil, false, err
			}
			if b.Rows() < b.Cap() {
				return nil, false, nil
			}
			out := b
			if c < exec.BatchRows {
				c *= 2
			}
			b = exec.NewColumnBatch(schema, c)
			return out, true, nil
		}
		finish := func() (*exec.ColumnBatch, bool, error) {
			if b.Rows() == 0 {
				return nil, false, nil
			}
			return b, true, nil
		}
		return kv.TaskCollector[*exec.ColumnBatch]{Add: add, Finish: finish}
	}
	var budgetErr error
	err = kv.ScanCollect(ctx, t.cluster, ranges, newTask, func(b *exec.ColumnBatch) bool {
		sz := b.MemSize()
		if err := qry.Reserve(sz); err != nil {
			budgetErr = err
			return false
		}
		keep := emit(b)
		qry.Release(sz)
		return keep
	})
	if budgetErr != nil {
		return budgetErr
	}
	return exec.MapCtxErr(err)
}

// matchesAt is matches over a batch row: same predicate, no boxing for
// the time columns.
func (t *Table) matchesAt(b *exec.ColumnBatch, ri int, q index.Query) bool {
	if t.geomIdx >= 0 {
		g, _ := b.Col(t.geomIdx).Value(ri).(geom.Geometry)
		if g == nil || !g.MBR().Intersects(q.Window) {
			return false
		}
	}
	if q.HasTime && t.timeIdx >= 0 {
		var start int64
		if tv := b.Col(t.timeIdx); !tv.Nulls[ri] {
			start = tv.Ints[ri]
		}
		end := start
		if t.endIdx >= 0 {
			if ev := b.Col(t.endIdx); !ev.Nulls[ri] {
				end = ev.Ints[ri]
			}
		}
		if start > q.TMax || end < q.TMin {
			return false
		}
	}
	return true
}

// scanRowsLegacy is the pre-columnar row pipeline, kept as the
// reference implementation the property tests compare ScanBatches
// against (and as a fallback path for debugging).
func (t *Table) scanRowsLegacy(ctx context.Context, q index.Query, needed []bool, emit func(exec.Row) bool) error {
	path, err := t.planHeuristic(q)
	if err != nil {
		return err
	}
	return t.pipelineScan(ctx, path.Ranges, q, needed, emit)
}

// filterCols returns the bitmap of columns matches() reads, or nil when
// the table has no window-filterable columns.
func (t *Table) filterCols() []bool {
	if t.geomIdx < 0 && t.timeIdx < 0 && t.endIdx < 0 {
		return nil
	}
	f := make([]bool, len(t.Desc.Columns))
	for _, i := range []int{t.geomIdx, t.timeIdx, t.endIdx} {
		if i >= 0 {
			f[i] = true
		}
	}
	return f
}

// pipelineScan runs decode + post-filter inside the scan workers.
func (t *Table) pipelineScan(ctx context.Context, ranges []kv.KeyRange, q index.Query, needed []bool, emit func(exec.Row) bool) error {
	filter := t.filterCols()
	process := func(_, v []byte) (exec.Row, bool, error) {
		row := make(exec.Row, len(t.Desc.Columns))
		if filter != nil {
			if err := t.codec.decodeInto(row, v, filter); err != nil {
				return nil, false, err
			}
		}
		keep, err := t.matches(row, q)
		if err != nil || !keep {
			return nil, false, err
		}
		// Second pass decodes the surviving row's remaining needed
		// columns; the ones decoded above are skipped (row[i] != nil).
		if err := t.codec.decodeInto(row, v, needed); err != nil {
			return nil, false, err
		}
		return row, true, nil
	}
	return exec.MapCtxErr(kv.ScanRangesFunc(ctx, t.cluster, ranges, process, emit))
}

// matches post-filters a decoded row against the query window.
func (t *Table) matches(row exec.Row, q index.Query) (bool, error) {
	if t.geomIdx >= 0 {
		g, _ := row[t.geomIdx].(geom.Geometry)
		if g == nil {
			return false, nil
		}
		if !g.MBR().Intersects(q.Window) {
			return false, nil
		}
	}
	if q.HasTime && t.timeIdx >= 0 {
		start, _ := row[t.timeIdx].(int64)
		end := start
		if t.endIdx >= 0 {
			if e, ok := row[t.endIdx].(int64); ok {
				end = e
			}
		}
		if start > q.TMax || end < q.TMin {
			return false, nil
		}
	}
	return true, nil
}

// FullScan streams every row via the attribute index, decoding inside
// the scan workers.
func (t *Table) FullScan(ctx context.Context, emit func(exec.Row) bool) error {
	prefix := t.keyPrefix(t.attrID)
	ranges := []kv.KeyRange{{Start: prefix, End: nextKeyPrefix(prefix)}}
	process := func(_, v []byte) (exec.Row, bool, error) {
		row, err := t.codec.Decode(v)
		return row, err == nil, err
	}
	return exec.MapCtxErr(kv.ScanRangesFunc(ctx, t.cluster, ranges, process, emit))
}

// DropData deletes every key owned by the table. (DROP TABLE deletes the
// catalog entry and the stored data.) Keys are collected without
// touching the values and deleted in one batch per region.
func (t *Table) DropData() error {
	id := t.Desc.TableID
	prefix := []byte{byte(id >> 24), byte(id >> 16), byte(id >> 8), byte(id)}
	ranges := []kv.KeyRange{{Start: prefix, End: nextKeyPrefix(prefix)}}
	var keys [][]byte
	err := kv.ScanRangesFunc(context.Background(), t.cluster, ranges,
		func(k, _ []byte) ([]byte, bool, error) {
			return append([]byte(nil), k...), true, nil
		},
		func(k []byte) bool {
			keys = append(keys, k)
			return true
		})
	if err != nil {
		return err
	}
	return t.cluster.DeleteBatch(keys)
}

// GeomIndex returns the geometry column position or -1.
func (t *Table) GeomIndex() int { return t.geomIdx }

// TimeIndex returns the time column position or -1.
func (t *Table) TimeIndex() int { return t.timeIdx }

// FidIndex returns the primary-key column position.
func (t *Table) FidIndex() int { return t.fidIdx }
