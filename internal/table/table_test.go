package table

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"just/internal/exec"
	"just/internal/geom"
	"just/internal/index"
	"just/internal/kv"
)

func TestCatalogCRUD(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	c, err := OpenCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	d := &Desc{
		Name: "orders", User: "alice", Kind: KindCommon,
		Columns:   []Column{{Name: "fid", Type: exec.TypeInt, PrimaryKey: true}},
		Indexes:   []IndexDesc{{Strategy: "attr", ID: 0}},
		FidColumn: "fid",
	}
	if err := c.Create(d); err != nil {
		t.Fatal(err)
	}
	if d.TableID == 0 {
		t.Fatal("TableID not assigned")
	}
	if err := c.Create(&Desc{Name: "orders", User: "alice", Columns: d.Columns}); err == nil {
		t.Fatal("duplicate create should fail")
	}
	// Same name, different user is fine (namespaces).
	if err := c.Create(&Desc{Name: "orders", User: "bob", Columns: d.Columns}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("alice", "orders")
	if err != nil || got.User != "alice" {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if names := c.List("alice"); len(names) != 1 || names[0] != "orders" {
		t.Fatalf("List = %v", names)
	}
	// Persistence across reopen.
	c2, err := OpenCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Get("bob", "orders"); err != nil {
		t.Fatalf("reopened catalog lost table: %v", err)
	}
	if err := c2.Drop("alice", "orders"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Get("alice", "orders"); err == nil {
		t.Fatal("dropped table still present")
	}
}

func TestCatalogValidation(t *testing.T) {
	c, _ := OpenCatalog("")
	bad := []*Desc{
		{Name: "1badname", Columns: []Column{{Name: "a", Type: exec.TypeInt}}},
		{Name: "ok", Columns: nil},
		{Name: "ok", Columns: []Column{{Name: "dup", Type: exec.TypeInt}, {Name: "dup", Type: exec.TypeInt}}},
		{Name: "ok", Columns: []Column{{Name: "semi;colon", Type: exec.TypeInt}}},
	}
	for i, d := range bad {
		if err := c.Create(d); err == nil {
			t.Errorf("case %d: create should fail", i)
		}
	}
}

func TestCatalogStats(t *testing.T) {
	c, _ := OpenCatalog("")
	d := &Desc{Name: "t", Columns: []Column{{Name: "a", Type: exec.TypeInt}}}
	c.Create(d)
	c.UpdateStats("", "t", 10, 100, 200)
	c.UpdateStats("", "t", 5, 50, 150)
	got, _ := c.Get("", "t")
	if got.RecordCount != 15 || got.MinTimeMS != 50 || got.MaxTimeMS != 200 {
		t.Fatalf("stats = %+v", got)
	}
}

func testColumns() []Column {
	return []Column{
		{Name: "fid", Type: exec.TypeInt, PrimaryKey: true},
		{Name: "name", Type: exec.TypeString},
		{Name: "time", Type: exec.TypeTime},
		{Name: "geom", Type: exec.TypeGeometry, SRID: 4326},
		{Name: "score", Type: exec.TypeFloat},
		{Name: "flag", Type: exec.TypeBool},
		{Name: "payload", Type: exec.TypeBytes},
		{Name: "gps", Type: exec.TypeSTSeries, Compress: "gzip"},
		{Name: "series", Type: exec.TypeTSeries},
	}
}

func testRow(i int) exec.Row {
	return exec.Row{
		int64(i),
		fmt.Sprintf("rec-%d", i),
		int64(i * 1000),
		geom.Point{Lng: float64(i%360) - 180, Lat: float64(i%180) - 90},
		float64(i) / 3,
		i%2 == 0,
		[]byte{byte(i), byte(i >> 8)},
		[]geom.TPoint{{Point: geom.Point{Lng: 1, Lat: 2}, T: int64(i)}, {Point: geom.Point{Lng: 1.1, Lat: 2.1}, T: int64(i + 60)}},
		[]float64{1.5, 2.5, float64(i)},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	codec := NewCodec(testColumns())
	for _, i := range []int{0, 1, 42, 9999} {
		row := testRow(i)
		data, err := codec.Encode(row)
		if err != nil {
			t.Fatal(err)
		}
		back, err := codec.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if back[0] != row[0] || back[1] != row[1] || back[2] != row[2] {
			t.Fatalf("scalar mismatch: %v vs %v", back[:3], row[:3])
		}
		if back[4] != row[4] || back[5] != row[5] {
			t.Fatalf("float/bool mismatch")
		}
		gp := back[3].(geom.Point)
		if gp != row[3].(geom.Point) {
			t.Fatalf("geometry mismatch: %v vs %v", gp, row[3])
		}
		pts := back[7].([]geom.TPoint)
		if len(pts) != 2 || pts[1].T != int64(i+60) || pts[0].Lng != 1 {
			t.Fatalf("st_series mismatch: %v", pts)
		}
		ser := back[8].([]float64)
		if len(ser) != 3 || ser[2] != float64(i) {
			t.Fatalf("t_series mismatch: %v", ser)
		}
	}
}

func TestCodecNulls(t *testing.T) {
	codec := NewCodec(testColumns())
	row := testRow(7)
	row[1] = nil
	row[3] = nil
	row[7] = nil
	data, err := codec.Encode(row)
	if err != nil {
		t.Fatal(err)
	}
	back, err := codec.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back[1] != nil || back[3] != nil || back[7] != nil {
		t.Fatalf("nulls not preserved: %v", back)
	}
	if back[0] != int64(7) {
		t.Fatal("non-null fields lost")
	}
}

func TestCodecGeometryKinds(t *testing.T) {
	codec := NewCodec([]Column{{Name: "g", Type: exec.TypeGeometry}})
	geoms := []geom.Geometry{
		geom.Point{Lng: 1.5, Lat: -2.5},
		&geom.LineString{Points: []geom.Point{{Lng: 0, Lat: 0}, {Lng: 1, Lat: 1}, {Lng: 2, Lat: 0}}},
		&geom.Polygon{Outer: []geom.Point{{Lng: 0, Lat: 0}, {Lng: 4, Lat: 0}, {Lng: 4, Lat: 4}}, Holes: [][]geom.Point{{{Lng: 1, Lat: 1}, {Lng: 2, Lat: 1}, {Lng: 2, Lat: 2}}}},
		&geom.MultiPoint{Points: []geom.Point{{Lng: 5, Lat: 6}, {Lng: 7, Lat: 8}}},
	}
	for _, g := range geoms {
		data, err := codec.Encode(exec.Row{g})
		if err != nil {
			t.Fatal(err)
		}
		back, err := codec.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		bg := back[0].(geom.Geometry)
		if bg.WKT() != g.WKT() {
			t.Fatalf("geometry round trip: %s vs %s", bg.WKT(), g.WKT())
		}
	}
}

func TestCodecCompressionShrinksGPSLists(t *testing.T) {
	long := make([]geom.TPoint, 500)
	tms := int64(0)
	for i := range long {
		tms += 3000
		long[i] = geom.TPoint{Point: geom.Point{Lng: 116.3 + float64(i)*1e-5, Lat: 39.9}, T: tms}
	}
	plain := NewCodec([]Column{{Name: "gps", Type: exec.TypeSTSeries}})
	zipped := NewCodec([]Column{{Name: "gps", Type: exec.TypeSTSeries, Compress: "gzip"}})
	p, err := plain.Encode(exec.Row{long})
	if err != nil {
		t.Fatal(err)
	}
	z, err := zipped.Encode(exec.Row{long})
	if err != nil {
		t.Fatal(err)
	}
	if len(z) >= len(p)*2/3 {
		t.Fatalf("compressed %d not much smaller than plain %d", len(z), len(p))
	}
	back, err := zipped.Decode(z)
	if err != nil {
		t.Fatal(err)
	}
	pts := back[0].([]geom.TPoint)
	if len(pts) != 500 || pts[499].T != tms {
		t.Fatal("compressed round trip corrupt")
	}
}

func TestCodecZlib(t *testing.T) {
	codec := NewCodec([]Column{{Name: "s", Type: exec.TypeString, Compress: "zip"}})
	data, err := codec.Encode(exec.Row{"hello hello hello hello"})
	if err != nil {
		t.Fatal(err)
	}
	back, err := codec.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back[0] != "hello hello hello hello" {
		t.Fatalf("zlib round trip = %v", back[0])
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	codec := NewCodec([]Column{
		{Name: "i", Type: exec.TypeInt},
		{Name: "f", Type: exec.TypeFloat},
		{Name: "s", Type: exec.TypeString},
	})
	f := func(i int64, fl float64, s string) bool {
		data, err := codec.Encode(exec.Row{i, fl, s})
		if err != nil {
			return false
		}
		back, err := codec.Decode(data)
		if err != nil {
			return false
		}
		return back[0] == i && (back[1] == fl || fl != fl) && back[2] == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func newTestTable(t *testing.T) (*Table, *kv.Cluster) {
	t.Helper()
	cluster, err := kv.OpenCluster(t.TempDir(), kv.ClusterOptions{
		Options: kv.Options{DisableWAL: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	cat, _ := OpenCatalog("")
	d := &Desc{
		Name: "points", Kind: KindCommon,
		Columns: []Column{
			{Name: "fid", Type: exec.TypeInt, PrimaryKey: true},
			{Name: "time", Type: exec.TypeTime},
			{Name: "geom", Type: exec.TypeGeometry},
			{Name: "name", Type: exec.TypeString},
		},
		Indexes: []IndexDesc{
			{Strategy: "attr", ID: 0},
			{Strategy: "z2", ID: 1},
			{Strategy: "z2t", ID: 2},
		},
		FidColumn: "fid", GeomColumn: "geom", TimeColumn: "time",
	}
	if err := cat.Create(d); err != nil {
		t.Fatal(err)
	}
	tbl, err := Open(d, cluster, IndexConfig{Shards: 2, Period: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	return tbl, cluster
}

const hourMS = int64(3600 * 1000)

func TestTableInsertGetDelete(t *testing.T) {
	tbl, _ := newTestTable(t)
	row := exec.Row{int64(1), int64(5 * hourMS), geom.Point{Lng: 116.4, Lat: 39.9}, "bj"}
	if err := tbl.Insert(row); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Get(int64(1))
	if err != nil {
		t.Fatal(err)
	}
	if got[3] != "bj" {
		t.Fatalf("got = %v", got)
	}
	if err := tbl.Delete(int64(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get(int64(1)); err == nil {
		t.Fatal("deleted row still readable")
	}
}

func TestTableScanQuery(t *testing.T) {
	tbl, _ := newTestTable(t)
	// Cluster of points near Beijing at hour i; others far away.
	for i := 0; i < 200; i++ {
		lng, lat := 116.40+float64(i%10)*0.001, 39.90+float64(i/10%10)*0.001
		if i%4 == 0 {
			lng, lat = -70.0, -30.0 // far away
		}
		row := exec.Row{int64(i), int64(i) * hourMS / 10, geom.Point{Lng: lng, Lat: lat}, "x"}
		if err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	q := index.Query{
		Window:  geom.NewMBR(116.39, 39.89, 116.42, 39.92),
		HasTime: true,
		TMin:    0, TMax: 200 * hourMS,
	}
	var got []int64
	if err := tbl.ScanQuery(context.Background(), q, func(r exec.Row) bool {
		got = append(got, r[0].(int64))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 150 {
		t.Fatalf("scan found %d rows, want 150", len(got))
	}
	for _, id := range got {
		if id%4 == 0 {
			t.Fatalf("far-away row %d returned", id)
		}
	}
	// Narrow time filter: first 10 hours only.
	q.TMax = 10*hourMS - 1
	got = got[:0]
	if err := tbl.ScanQuery(context.Background(), q, func(r exec.Row) bool {
		got = append(got, r[0].(int64))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for _, id := range got {
		if id >= 100 {
			t.Fatalf("row %d outside time window returned", id)
		}
	}
}

func TestTableUpdateInPlace(t *testing.T) {
	tbl, _ := newTestTable(t)
	row := exec.Row{int64(9), int64(0), geom.Point{Lng: 10, Lat: 10}, "v1"}
	tbl.Insert(row)
	row2 := exec.Row{int64(9), int64(0), geom.Point{Lng: 10, Lat: 10}, "v2"}
	tbl.Insert(row2)
	got, err := tbl.Get(int64(9))
	if err != nil || got[3] != "v2" {
		t.Fatalf("update: %v, %v", got, err)
	}
	// Spatial scan must see exactly one copy.
	n := 0
	tbl.ScanQuery(context.Background(), index.Query{Window: geom.NewMBR(9, 9, 11, 11)}, func(r exec.Row) bool {
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("scan sees %d copies after update, want 1", n)
	}
}

func TestTableUpdateMovesRecord(t *testing.T) {
	// Updating a record with a new position must remove the stale index
	// entry: the old location must stop matching (the taxi-dispatch
	// example moves cabs).
	tbl, _ := newTestTable(t)
	tbl.Insert(exec.Row{int64(7), int64(0), geom.Point{Lng: 10, Lat: 10}, "old-pos"})
	tbl.Insert(exec.Row{int64(7), int64(0), geom.Point{Lng: 50, Lat: 50}, "new-pos"})

	count := func(win geom.MBR) int {
		n := 0
		tbl.ScanQuery(context.Background(), index.Query{Window: win}, func(exec.Row) bool { n++; return true })
		return n
	}
	if n := count(geom.NewMBR(9, 9, 11, 11)); n != 0 {
		t.Fatalf("old location still matches %d rows", n)
	}
	if n := count(geom.NewMBR(49, 49, 51, 51)); n != 1 {
		t.Fatalf("new location matches %d rows, want 1", n)
	}
	// Moving in time matters too (Z2T period changes).
	tbl.Insert(exec.Row{int64(7), 40 * 24 * hourMS, geom.Point{Lng: 50, Lat: 50}, "new-time"})
	n := 0
	tbl.ScanQuery(context.Background(), index.Query{Window: geom.NewMBR(49, 49, 51, 51), HasTime: true, TMin: 0, TMax: hourMS},
		func(exec.Row) bool { n++; return true })
	if n != 0 {
		t.Fatalf("old time period still matches %d rows", n)
	}
}

func TestTableFullScan(t *testing.T) {
	tbl, _ := newTestTable(t)
	for i := 0; i < 50; i++ {
		tbl.Insert(exec.Row{int64(i), int64(0), geom.Point{Lng: float64(i), Lat: 0}, "x"})
	}
	n := 0
	if err := tbl.FullScan(context.Background(), func(r exec.Row) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("full scan = %d rows", n)
	}
}

func TestTableDropData(t *testing.T) {
	tbl, cluster := newTestTable(t)
	for i := 0; i < 20; i++ {
		tbl.Insert(exec.Row{int64(i), int64(0), geom.Point{Lng: 1, Lat: 1}, "x"})
	}
	if err := tbl.DropData(); err != nil {
		t.Fatal(err)
	}
	n := 0
	cluster.ScanRange(kv.KeyRange{}, func(k, v []byte) bool { n++; return true })
	if n != 0 {
		t.Fatalf("%d keys remain after DropData", n)
	}
}

func TestTrajectoryPluginRoundTrip(t *testing.T) {
	spec, ok := LookupPlugin("trajectory")
	if !ok {
		t.Fatal("trajectory plugin not registered")
	}
	if len(spec.Indexes) != 3 {
		t.Fatalf("trajectory indexes = %v", spec.Indexes)
	}
	traj := &Trajectory{
		ID: "t-1",
		Points: []geom.TPoint{
			{Point: geom.Point{Lng: 116.40, Lat: 39.90}, T: 1000},
			{Point: geom.Point{Lng: 116.41, Lat: 39.91}, T: 2000},
			{Point: geom.Point{Lng: 116.42, Lat: 39.90}, T: 3500},
		},
	}
	row, err := traj.Row()
	if err != nil {
		t.Fatal(err)
	}
	if row[4] != int64(1000) || row[5] != int64(3500) {
		t.Fatalf("time span = %v %v", row[4], row[5])
	}
	back, err := TrajectoryFromRow(row)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != "t-1" || len(back.Points) != 3 {
		t.Fatalf("round trip = %+v", back)
	}
	mbr := back.MBR()
	if mbr.MinLng != 116.40 || mbr.MaxLng != 116.42 {
		t.Fatalf("mbr = %v", mbr)
	}
}

func TestTrajectoryTableEndToEnd(t *testing.T) {
	cluster, err := kv.OpenCluster(t.TempDir(), kv.ClusterOptions{Options: kv.Options{DisableWAL: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	d, err := NewDescFromPlugin("", "traj", "trajectory")
	if err != nil {
		t.Fatal(err)
	}
	cat, _ := OpenCatalog("")
	cat.Create(d)
	tbl, err := Open(d, cluster, IndexConfig{Period: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		baseLng := 116.0 + rng.Float64()
		baseLat := 39.5 + rng.Float64()
		start := int64(rng.Intn(100)) * hourMS
		var pts []geom.TPoint
		for j := 0; j < 20; j++ {
			pts = append(pts, geom.TPoint{
				Point: geom.Point{Lng: baseLng + float64(j)*1e-4, Lat: baseLat},
				T:     start + int64(j)*30000,
			})
		}
		traj := &Trajectory{ID: fmt.Sprintf("t-%03d", i), Points: pts}
		row, _ := traj.Row()
		if err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	// Query a window covering everything: all 100 back.
	n := 0
	err = tbl.ScanQuery(context.Background(), index.Query{
		Window: geom.WorldMBR, HasTime: true, TMin: 0, TMax: 100 * hourMS,
	}, func(r exec.Row) bool { n++; return true })
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("world query = %d, want 100", n)
	}
	// Spatial-only query (XZ2 index path).
	n = 0
	err = tbl.ScanQuery(context.Background(), index.Query{Window: geom.NewMBR(115, 39, 118, 41)},
		func(r exec.Row) bool { n++; return true })
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("spatial query = %d, want 100", n)
	}
}

func TestViews(t *testing.T) {
	ctx := exec.NewContext(2, 0)
	vs := NewViews(time.Hour)
	now := time.Unix(0, 0)
	vs.now = func() time.Time { return now }

	df, _ := exec.NewDataFrame(ctx, exec.NewSchema(exec.Field{Name: "v", Type: exec.TypeInt}), []exec.Row{{int64(1)}})
	vs.Put("alice", "v1", df)
	got, err := vs.Get("alice", "v1")
	if err != nil || got.Frame.Count() != 1 {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if names := vs.List("alice"); len(names) != 1 {
		t.Fatalf("List = %v", names)
	}
	if _, err := vs.Get("bob", "v1"); err == nil {
		t.Fatal("cross-user view access should fail")
	}
	// Idle past TTL: evicted.
	now = now.Add(2 * time.Hour)
	if _, err := vs.Get("alice", "v1"); err == nil {
		t.Fatal("expired view should be evicted")
	}
	if ctx.MemUsed() != 0 {
		t.Fatalf("eviction leaked %d bytes", ctx.MemUsed())
	}
}

func TestViewDropReleasesMemory(t *testing.T) {
	ctx := exec.NewContext(2, 0)
	vs := NewViews(0)
	df, _ := exec.NewDataFrame(ctx, exec.NewSchema(exec.Field{Name: "v", Type: exec.TypeInt}), []exec.Row{{int64(1)}, {int64(2)}})
	vs.Put("", "v", df)
	if err := vs.Drop("", "v"); err != nil {
		t.Fatal(err)
	}
	if ctx.MemUsed() != 0 {
		t.Fatalf("drop leaked %d bytes", ctx.MemUsed())
	}
	if err := vs.Drop("", "v"); err == nil {
		t.Fatal("double drop should fail")
	}
}
