package table

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"just/internal/exec"
)

// View is a named in-memory DataFrame — the cached query result of
// CREATE VIEW (Section IV-D): "one query, multiple usages".
type View struct {
	Name      string
	User      string
	Frame     *exec.DataFrame
	CreatedAt time.Time
	lastUsed  time.Time
}

// Views is the registry of live view tables with session-timeout
// eviction ("once the user sessions are time out, their view tables
// would be cleared up from the memory").
type Views struct {
	mu  sync.Mutex
	m   map[string]*View
	ttl time.Duration
	now func() time.Time // injectable clock for tests
}

// NewViews creates a registry; ttl <= 0 disables expiry.
func NewViews(ttl time.Duration) *Views {
	return &Views{m: map[string]*View{}, ttl: ttl, now: time.Now}
}

// Put registers (or replaces) a view, releasing any frame it replaces.
func (v *Views) Put(user, name string, df *exec.DataFrame) {
	v.mu.Lock()
	defer v.mu.Unlock()
	qn := QualifiedName(user, name)
	if old, ok := v.m[qn]; ok {
		old.Frame.Release()
	}
	now := v.now()
	v.m[qn] = &View{Name: name, User: user, Frame: df, CreatedAt: now, lastUsed: now}
}

// Get fetches a view and refreshes its idle timer.
func (v *Views) Get(user, name string) (*View, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.evictLocked()
	if view, ok := v.m[QualifiedName(user, name)]; ok {
		view.lastUsed = v.now()
		return view, nil
	}
	return nil, fmt.Errorf("%w: view %s", ErrNoTable, name)
}

// Drop removes a view and releases its memory.
func (v *Views) Drop(user, name string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	qn := QualifiedName(user, name)
	view, ok := v.m[qn]
	if !ok {
		return fmt.Errorf("%w: view %s", ErrNoTable, name)
	}
	view.Frame.Release()
	delete(v.m, qn)
	return nil
}

// List returns the user's view names (SHOW VIEWS), sorted.
func (v *Views) List(user string) []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.evictLocked()
	var out []string
	for _, view := range v.m {
		if view.User == user {
			out = append(out, view.Name)
		}
	}
	sort.Strings(out)
	return out
}

// evictLocked drops views idle past the TTL.
func (v *Views) evictLocked() {
	if v.ttl <= 0 {
		return
	}
	cutoff := v.now().Add(-v.ttl)
	for qn, view := range v.m {
		if view.lastUsed.Before(cutoff) {
			view.Frame.Release()
			delete(v.m, qn)
		}
	}
}
