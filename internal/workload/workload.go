// Package workload generates the datasets and query workloads of the
// paper's evaluation (Section VIII-A) at reproduction scale:
//
//   - Traj: lorry trajectories from JD Logistics — few records, each with
//     a large GPS list (the paper: 314,086 records, 886M points over one
//     month). We generate random-walk trajectories with the same
//     character: hundreds of points each, clustered in a metro area.
//   - Order: JD Mall purchase orders — many small point records
//     (71M in the paper, two months). We generate points drawn from a
//     Gaussian mixture over urban hotspots.
//   - Synthetic: the Traj dataset copied & resampled to scale (the paper
//     scales to 1 TB; we scale by a multiplier).
//
// All generators are seeded and deterministic.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"just/internal/exec"
	"just/internal/geom"
	"just/internal/table"
)

// Region is the metro area datasets are generated in (Beijing-ish).
var Region = geom.MBR{MinLng: 116.10, MinLat: 39.70, MaxLng: 116.70, MaxLat: 40.10}

const dayMS = int64(24 * 60 * 60 * 1000)

// TrajConfig tunes the Traj generator.
type TrajConfig struct {
	// N is the number of trajectories.
	N int
	// PointsPerTraj is the mean GPS list length (the paper notes
	// "hundreds of GPS points in a trajectory").
	PointsPerTraj int
	// Days is the time span (paper: one month).
	Days int
	// Seed makes the dataset reproducible.
	Seed int64
	// Region overrides the default area.
	Region geom.MBR
}

func (c TrajConfig) withDefaults() TrajConfig {
	if c.N <= 0 {
		c.N = 1000
	}
	if c.PointsPerTraj <= 0 {
		c.PointsPerTraj = 300
	}
	if c.Days <= 0 {
		c.Days = 30
	}
	if c.Region == (geom.MBR{}) {
		c.Region = Region
	}
	return c
}

// Trajectories generates the Traj dataset.
func Trajectories(cfg TrajConfig) []*table.Trajectory {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]*table.Trajectory, cfg.N)
	for i := range out {
		out[i] = randomWalk(rng, cfg, fmt.Sprintf("traj-%07d", i))
	}
	return out
}

// randomWalk simulates one courier trip: start at a random point, walk
// with piecewise-constant heading and ~8 m/s speed, one sample per ~15 s.
func randomWalk(rng *rand.Rand, cfg TrajConfig, id string) *table.Trajectory {
	n := cfg.PointsPerTraj/2 + rng.Intn(cfg.PointsPerTraj)
	if n < 2 {
		n = 2
	}
	start := geom.Point{
		Lng: cfg.Region.MinLng + rng.Float64()*cfg.Region.Width(),
		Lat: cfg.Region.MinLat + rng.Float64()*cfg.Region.Height(),
	}
	tms := rng.Int63n(int64(cfg.Days) * dayMS)
	heading := rng.Float64() * 2 * math.Pi
	speed := 5 + rng.Float64()*6 // m/s
	pts := make([]geom.TPoint, 0, n)
	cur := start
	for j := 0; j < n; j++ {
		pts = append(pts, geom.TPoint{Point: cur, T: tms})
		dt := 10.0 + rng.Float64()*10 // seconds between fixes
		tms += int64(dt * 1000)
		if rng.Intn(10) == 0 {
			heading += (rng.Float64() - 0.5) * math.Pi
		}
		// Couriers dwell at delivery stops (~2% of samples start a
		// 15-40 minute pause sampled every ~5 minutes); stay-point
		// detection depends on these.
		if rng.Intn(50) == 0 {
			dwellSamples := 3 + rng.Intn(5)
			for d := 0; d < dwellSamples; d++ {
				tms += int64(4+rng.Intn(3)) * 60 * 1000
				pts = append(pts, geom.TPoint{Point: cur, T: tms})
			}
			tms += 30 * 1000 // back on the road
		}
		distM := speed * dt
		cur = geom.Point{
			Lng: cur.Lng + geom.MetersToDegreesLng(distM*math.Cos(heading), cur.Lat),
			Lat: cur.Lat + geom.MetersToDegreesLat(distM*math.Sin(heading)),
		}
		cur.Lng = clamp(cur.Lng, cfg.Region.MinLng, cfg.Region.MaxLng)
		cur.Lat = clamp(cur.Lat, cfg.Region.MinLat, cfg.Region.MaxLat)
	}
	return &table.Trajectory{ID: id, Points: pts}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// TrajectoryRows converts trajectories to plugin-table rows.
func TrajectoryRows(trajs []*table.Trajectory) ([]exec.Row, error) {
	rows := make([]exec.Row, len(trajs))
	for i, tr := range trajs {
		row, err := tr.Row()
		if err != nil {
			return nil, err
		}
		rows[i] = row
	}
	return rows, nil
}

// OrderConfig tunes the Order generator.
type OrderConfig struct {
	// N is the number of orders.
	N int
	// Hotspots is the number of Gaussian urban centers.
	Hotspots int
	// Days is the time span (paper: two months).
	Days int
	// Seed makes the dataset reproducible.
	Seed int64
	// Region overrides the default area.
	Region geom.MBR
}

func (c OrderConfig) withDefaults() OrderConfig {
	if c.N <= 0 {
		c.N = 100000
	}
	if c.Hotspots <= 0 {
		c.Hotspots = 20
	}
	if c.Days <= 0 {
		c.Days = 60
	}
	if c.Region == (geom.MBR{}) {
		c.Region = Region
	}
	return c
}

// Order is one purchase order: a delivery point with an order time (the
// address is biased for privacy, which the generator mimics with noise).
type Order struct {
	ID    int64
	Point geom.Point
	TMS   int64
}

// Orders generates the Order dataset from a seeded Gaussian mixture with
// a daily demand cycle.
func Orders(cfg OrderConfig) []Order {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	type hotspot struct {
		center geom.Point
		sigma  float64
	}
	hs := make([]hotspot, cfg.Hotspots)
	for i := range hs {
		hs[i] = hotspot{
			center: geom.Point{
				Lng: cfg.Region.MinLng + rng.Float64()*cfg.Region.Width(),
				Lat: cfg.Region.MinLat + rng.Float64()*cfg.Region.Height(),
			},
			sigma: 0.005 + rng.Float64()*0.02,
		}
	}
	out := make([]Order, cfg.N)
	for i := range out {
		h := hs[rng.Intn(len(hs))]
		day := rng.Int63n(int64(cfg.Days))
		// Orders peak around 20:00.
		hour := int64(math.Mod(20+rng.NormFloat64()*4+24, 24) * float64(dayMS) / 24)
		out[i] = Order{
			ID: int64(i),
			Point: geom.Point{
				Lng: clamp(h.center.Lng+rng.NormFloat64()*h.sigma, cfg.Region.MinLng, cfg.Region.MaxLng),
				Lat: clamp(h.center.Lat+rng.NormFloat64()*h.sigma, cfg.Region.MinLat, cfg.Region.MaxLat),
			},
			TMS: day*dayMS + hour,
		}
	}
	return out
}

// OrderSchema is the common-table layout of the Order dataset
// (Table III: Z2 on point, Z2T on point and t).
func OrderSchema() []table.Column {
	return []table.Column{
		{Name: "fid", Type: exec.TypeInt, PrimaryKey: true},
		{Name: "time", Type: exec.TypeTime},
		{Name: "geom", Type: exec.TypeGeometry, Subtype: "point", SRID: 4326},
	}
}

// OrderRows converts orders to common-table rows.
func OrderRows(orders []Order) []exec.Row {
	rows := make([]exec.Row, len(orders))
	for i, o := range orders {
		rows[i] = exec.Row{o.ID, o.TMS, o.Point}
	}
	return rows
}

// Synthetic scales the Traj dataset by copying & resampling (the paper's
// method for the 1 TB Synthetic dataset): each copy re-jitters the source
// trajectory in space and time and gets a fresh id.
func Synthetic(base []*table.Trajectory, multiplier int, seed int64) []*table.Trajectory {
	if multiplier <= 1 {
		return base
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]*table.Trajectory, 0, len(base)*multiplier)
	out = append(out, base...)
	for m := 1; m < multiplier; m++ {
		for i, src := range base {
			dLng := (rng.Float64() - 0.5) * 0.2
			dLat := (rng.Float64() - 0.5) * 0.2
			dT := rng.Int63n(300 * dayMS) // spread copies over ~10 months
			pts := make([]geom.TPoint, len(src.Points))
			for j, p := range src.Points {
				pts[j] = geom.TPoint{
					Point: geom.Point{Lng: p.Lng + dLng, Lat: p.Lat + dLat},
					T:     p.T + dT,
				}
			}
			out = append(out, &table.Trajectory{
				ID:     fmt.Sprintf("syn-%d-%07d", m, i),
				Points: pts,
			})
		}
	}
	return out
}

// --- Query workloads (Table IV) ---

// QueryConfig generates the randomized query parameters of Table IV.
type QueryConfig struct {
	Seed   int64
	Region geom.MBR
	// Days bounds random time-window starts.
	Days int
}

func (c QueryConfig) withDefaults() QueryConfig {
	if c.Region == (geom.MBR{}) {
		c.Region = Region
	}
	if c.Days <= 0 {
		c.Days = 30
	}
	return c
}

// SpatialWindows returns n random square windows with the given side (km).
func SpatialWindows(cfg QueryConfig, n int, sideKM float64) []geom.MBR {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]geom.MBR, n)
	for i := range out {
		c := geom.Point{
			Lng: cfg.Region.MinLng + rng.Float64()*cfg.Region.Width(),
			Lat: cfg.Region.MinLat + rng.Float64()*cfg.Region.Height(),
		}
		out[i] = geom.SquareAround(c, sideKM*1000)
	}
	return out
}

// TimeWindows returns n random [start, end] intervals of the given
// duration within the dataset's span.
func TimeWindows(cfg QueryConfig, n int, duration int64) [][2]int64 {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	span := int64(cfg.Days) * dayMS
	out := make([][2]int64, n)
	for i := range out {
		maxStart := span - duration
		if maxStart <= 0 {
			maxStart = 1
		}
		start := rng.Int63n(maxStart)
		out[i] = [2]int64{start, start + duration}
	}
	return out
}

// KNNPoints returns n random query points.
func KNNPoints(cfg QueryConfig, n int) []geom.Point {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Point{
			Lng: cfg.Region.MinLng + rng.Float64()*cfg.Region.Width(),
			Lat: cfg.Region.MinLat + rng.Float64()*cfg.Region.Height(),
		}
	}
	return out
}

// Durations used by Table IV's time-window axis.
const (
	Hour  = int64(3600 * 1000)
	Day   = 24 * Hour
	Week  = 7 * Day
	Month = 30 * Day
)
