package workload

import (
	"testing"

	"just/internal/geom"
)

func TestTrajectoriesDeterministic(t *testing.T) {
	a := Trajectories(TrajConfig{N: 10, Seed: 7})
	b := Trajectories(TrajConfig{N: 10, Seed: 7})
	if len(a) != 10 {
		t.Fatalf("generated %d", len(a))
	}
	for i := range a {
		if a[i].ID != b[i].ID || len(a[i].Points) != len(b[i].Points) {
			t.Fatal("generator not deterministic")
		}
		if a[i].Points[0] != b[i].Points[0] {
			t.Fatal("generator not deterministic (points)")
		}
	}
}

func TestTrajectoriesShape(t *testing.T) {
	trajs := Trajectories(TrajConfig{N: 50, PointsPerTraj: 200, Days: 30, Seed: 1})
	for _, tr := range trajs {
		if len(tr.Points) < 2 {
			t.Fatalf("trajectory %s too short", tr.ID)
		}
		prev := int64(-1)
		for _, p := range tr.Points {
			if !Region.Contains(p.Point) {
				t.Fatalf("point %v outside region", p.Point)
			}
			if p.T <= prev {
				t.Fatal("timestamps not increasing")
			}
			prev = p.T
		}
		// Consecutive points should be physically plausible (< 400 m).
		for i := 1; i < len(tr.Points); i++ {
			d := geom.HaversineMeters(tr.Points[i-1].Point, tr.Points[i].Point)
			if d > 400 {
				t.Fatalf("jump of %g m in %s", d, tr.ID)
			}
		}
	}
	rows, err := TrajectoryRows(trajs)
	if err != nil || len(rows) != 50 {
		t.Fatalf("rows = %d, %v", len(rows), err)
	}
}

func TestOrdersShape(t *testing.T) {
	orders := Orders(OrderConfig{N: 5000, Seed: 3, Days: 60})
	if len(orders) != 5000 {
		t.Fatalf("generated %d", len(orders))
	}
	seen := map[int64]bool{}
	for _, o := range orders {
		if seen[o.ID] {
			t.Fatal("duplicate order id")
		}
		seen[o.ID] = true
		if !Region.Contains(o.Point) {
			t.Fatalf("order outside region: %v", o.Point)
		}
		if o.TMS < 0 || o.TMS > 61*dayMS {
			t.Fatalf("order time out of span: %d", o.TMS)
		}
	}
	// Hotspot clustering: a decent share of orders should fall in the
	// densest 1% of cells.
	cells := map[[2]int]int{}
	for _, o := range orders {
		cells[[2]int{int(o.Point.Lng * 100), int(o.Point.Lat * 100)}]++
	}
	max := 0
	for _, n := range cells {
		if n > max {
			max = n
		}
	}
	// A uniform spread over the ~60x40 cell region would put ~2 orders
	// per cell; hotspots should concentrate far more.
	if max < 30 {
		t.Fatalf("densest cell has %d orders; expected clustering", max)
	}
}

func TestSynthetic(t *testing.T) {
	base := Trajectories(TrajConfig{N: 20, Seed: 5})
	syn := Synthetic(base, 3, 9)
	if len(syn) != 60 {
		t.Fatalf("synthetic size = %d, want 60", len(syn))
	}
	ids := map[string]bool{}
	for _, tr := range syn {
		if ids[tr.ID] {
			t.Fatalf("duplicate id %s", tr.ID)
		}
		ids[tr.ID] = true
	}
	if got := Synthetic(base, 1, 9); len(got) != 20 {
		t.Fatal("multiplier 1 should return base")
	}
}

func TestQueryWorkloads(t *testing.T) {
	cfg := QueryConfig{Seed: 11, Days: 30}
	wins := SpatialWindows(cfg, 100, 3)
	for _, w := range wins {
		if !w.IsValid() {
			t.Fatalf("invalid window %v", w)
		}
		width := geom.HaversineMeters(
			geom.Point{Lng: w.MinLng, Lat: w.Center().Lat},
			geom.Point{Lng: w.MaxLng, Lat: w.Center().Lat})
		if width < 2500 || width > 3500 {
			t.Fatalf("window width = %g m, want ~3000", width)
		}
	}
	tws := TimeWindows(cfg, 50, Day)
	for _, tw := range tws {
		if tw[1]-tw[0] != Day {
			t.Fatalf("time window span = %d", tw[1]-tw[0])
		}
		if tw[0] < 0 || tw[1] > 31*Day {
			t.Fatalf("time window out of range: %v", tw)
		}
	}
	pts := KNNPoints(cfg, 30)
	if len(pts) != 30 {
		t.Fatal("knn points")
	}
	// Determinism across calls.
	wins2 := SpatialWindows(cfg, 100, 3)
	if wins[0] != wins2[0] {
		t.Fatal("windows not deterministic")
	}
}
