// Package zorder implements the space-filling curves JUST builds its
// indexes on: the Z-order (Morton) curves Z2 and Z3, and the XZ-ordering
// curves XZ2 and XZ3 for spatially extended objects (Böhm et al., SSD'99),
// together with the query planners that decompose a spatio-temporal window
// into a small set of contiguous key ranges.
package zorder

// Bits per dimension. GeoMesa uses 31 bits/dim for Z2 (62-bit keys) and
// 21 bits/dim for Z3 (63-bit keys); we follow the same layout.
const (
	Z2Bits = 31 // bits per dimension for the 2-D curve
	Z3Bits = 21 // bits per dimension for the 3-D curve
)

// interleave2 spreads the low 31 bits of v so that there is a zero bit
// between each original bit (magic-number bit tricks).
func interleave2(v uint64) uint64 {
	v &= 0x7FFFFFFF
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// deinterleave2 inverts interleave2: it compacts every second bit of v
// into the low 31 bits.
func deinterleave2(v uint64) uint64 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0F0F0F0F0F0F0F0F
	v = (v | v>>4) & 0x00FF00FF00FF00FF
	v = (v | v>>8) & 0x0000FFFF0000FFFF
	v = (v | v>>16) & 0x00000000FFFFFFFF
	return v
}

// interleave3 spreads the low 21 bits of v with two zero bits between
// each original bit.
func interleave3(v uint64) uint64 {
	v &= 0x1FFFFF
	v = (v | v<<32) & 0x001F00000000FFFF
	v = (v | v<<16) & 0x001F0000FF0000FF
	v = (v | v<<8) & 0x100F00F00F00F00F
	v = (v | v<<4) & 0x10C30C30C30C30C3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// deinterleave3 inverts interleave3.
func deinterleave3(v uint64) uint64 {
	v &= 0x1249249249249249
	v = (v | v>>2) & 0x10C30C30C30C30C3
	v = (v | v>>4) & 0x100F00F00F00F00F
	v = (v | v>>8) & 0x001F0000FF0000FF
	v = (v | v>>16) & 0x001F00000000FFFF
	v = (v | v>>32) & 0x00000000001FFFFF
	return v
}

// Encode2 combines two 31-bit coordinates into a single 62-bit Morton
// code, x occupying the even bit positions.
func Encode2(x, y uint32) uint64 {
	return interleave2(uint64(x)) | interleave2(uint64(y))<<1
}

// Decode2 inverts Encode2.
func Decode2(z uint64) (x, y uint32) {
	return uint32(deinterleave2(z)), uint32(deinterleave2(z >> 1))
}

// Encode3 combines three 21-bit coordinates into a single 63-bit Morton
// code, x in the lowest interleaved position.
func Encode3(x, y, z uint32) uint64 {
	return interleave3(uint64(x)) | interleave3(uint64(y))<<1 | interleave3(uint64(z))<<2
}

// Decode3 inverts Encode3.
func Decode3(v uint64) (x, y, z uint32) {
	return uint32(deinterleave3(v)), uint32(deinterleave3(v >> 1)), uint32(deinterleave3(v >> 2))
}
