package zorder

// Range is an inclusive interval [Min, Max] of curve codes. A query
// planner turns a spatio-temporal window into a sorted, disjoint list of
// Ranges; the storage layer runs one SCAN per range.
type Range struct {
	Min, Max uint64
}

// Contains reports whether code v falls inside r.
func (r Range) Contains(v uint64) bool { return v >= r.Min && v <= r.Max }

// CoversCode reports whether any range in rs contains v. rs must be
// sorted by Min (as returned by the planners); the check is a linear scan
// since range lists are short.
func CoversCode(rs []Range, v uint64) bool {
	for _, r := range rs {
		if r.Contains(v) {
			return true
		}
	}
	return false
}

// mergeAdjacent collapses sorted ranges that touch or overlap. The
// planners emit ranges in ascending code order, so a single pass suffices.
func mergeAdjacent(rs []Range) []Range {
	if len(rs) < 2 {
		return rs
	}
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Min <= last.Max || (last.Max != ^uint64(0) && r.Min == last.Max+1) {
			if r.Max > last.Max {
				last.Max = r.Max
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

// DefaultExtraLevels controls how far the planners recurse below the
// first level at which a curve cell fits inside the query window. Each
// extra level roughly quadruples planning work and doubles per-side range
// resolution; 3 matches GeoMesa's default precision/target-range balance.
const DefaultExtraLevels = 3

// ranges2 decomposes the discrete rectangle [xmin,xmax]×[ymin,ymax] (cell
// coordinates on a 2^Z2Bits grid) into Morton-code ranges. extraLevels
// tunes precision; the result over-approximates the query (callers
// post-filter) but never misses a cell inside it.
func ranges2(xmin, xmax, ymin, ymax uint32, extraLevels int) []Range {
	if xmin > xmax || ymin > ymax {
		return nil
	}
	qw := uint64(xmax-xmin) + 1
	qh := uint64(ymax-ymin) + 1
	maxDim := qw
	if qh > maxDim {
		maxDim = qh
	}
	start := Z2Bits - log2ceil(maxDim)
	if start < 0 {
		start = 0
	}
	maxLevel := start + extraLevels
	if maxLevel > Z2Bits {
		maxLevel = Z2Bits
	}
	var out []Range
	var walk func(xq, yq uint32, level int)
	walk = func(xq, yq uint32, level int) {
		s := uint(Z2Bits - level)
		cx0 := xq << s
		cy0 := yq << s
		cx1 := cx0 | (1<<s - 1)
		cy1 := cy0 | (1<<s - 1)
		if cx1 < xmin || cx0 > xmax || cy1 < ymin || cy0 > ymax {
			return // disjoint
		}
		zmin := Encode2(cx0, cy0)
		if (cx0 >= xmin && cx1 <= xmax && cy0 >= ymin && cy1 <= ymax) || level >= maxLevel {
			out = append(out, Range{zmin, zmin | (1<<(2*s) - 1)})
			return
		}
		for q := uint32(0); q < 4; q++ {
			walk(xq<<1|(q&1), yq<<1|(q>>1), level+1)
		}
	}
	walk(0, 0, 0)
	return mergeAdjacent(out)
}

// ranges3 is the 3-D analogue of ranges2 on a 2^Z3Bits grid.
func ranges3(xmin, xmax, ymin, ymax, zmin, zmax uint32, extraLevels int) []Range {
	if xmin > xmax || ymin > ymax || zmin > zmax {
		return nil
	}
	maxDim := uint64(xmax-xmin) + 1
	if d := uint64(ymax-ymin) + 1; d > maxDim {
		maxDim = d
	}
	if d := uint64(zmax-zmin) + 1; d > maxDim {
		maxDim = d
	}
	start := Z3Bits - log2ceil(maxDim)
	if start < 0 {
		start = 0
	}
	maxLevel := start + extraLevels
	if maxLevel > Z3Bits {
		maxLevel = Z3Bits
	}
	var out []Range
	var walk func(xq, yq, zq uint32, level int)
	walk = func(xq, yq, zq uint32, level int) {
		s := uint(Z3Bits - level)
		cx0, cy0, cz0 := xq<<s, yq<<s, zq<<s
		cx1, cy1, cz1 := cx0|(1<<s-1), cy0|(1<<s-1), cz0|(1<<s-1)
		if cx1 < xmin || cx0 > xmax || cy1 < ymin || cy0 > ymax || cz1 < zmin || cz0 > zmax {
			return
		}
		vmin := Encode3(cx0, cy0, cz0)
		if (cx0 >= xmin && cx1 <= xmax && cy0 >= ymin && cy1 <= ymax && cz0 >= zmin && cz1 <= zmax) || level >= maxLevel {
			out = append(out, Range{vmin, vmin | (1<<(3*s) - 1)})
			return
		}
		for q := uint32(0); q < 8; q++ {
			walk(xq<<1|(q&1), yq<<1|(q>>1&1), zq<<1|(q>>2), level+1)
		}
	}
	walk(0, 0, 0, 0)
	return mergeAdjacent(out)
}

// log2ceil returns ceil(log2(v)) for v >= 1.
func log2ceil(v uint64) int {
	n := 0
	for p := uint64(1); p < v; p <<= 1 {
		n++
	}
	return n
}
