package zorder

import (
	"math"

	"just/internal/geom"
)

// XZDefaultResolution is the quadtree/octree depth g of the XZ curves.
// GeoMesa's XZ2/XZ3 use 12; codes stay far below 2^63.
const XZDefaultResolution = 12

// XZ2 is the XZ-ordering curve for spatially extended (non-point)
// objects. Each object is assigned to the deepest quadtree cell whose
// *enlarged* region (the cell doubled in width and height, anchored at
// the cell's lower-left corner) still contains the object's MBR; the code
// is the preorder sequence number of that cell.
type XZ2 struct {
	// G is the maximum quadtree depth; zero means XZDefaultResolution.
	G int
}

func (x XZ2) g() int {
	if x.G <= 0 {
		return XZDefaultResolution
	}
	return x.G
}

// subtreeSize2 returns the number of sequence codes in the subtree rooted
// at a node of the given level (inclusive of the node), for resolution g.
func subtreeSize2(g, level int) uint64 {
	// (4^(g-level+1) - 1) / 3
	return (pow4(g-level+1) - 1) / 3
}

func pow4(n int) uint64 { return 1 << (2 * uint(n)) }
func pow8(n int) uint64 { return 1 << (3 * uint(n)) }

// Index returns the XZ2 sequence code for an object with the given MBR
// (WGS84 degrees).
func (x XZ2) Index(m geom.MBR) uint64 {
	g := x.g()
	x1, y1 := normXZ(m.MinLng, -180, 180), normXZ(m.MinLat, -90, 90)
	x2, y2 := normXZ(m.MaxLng, -180, 180), normXZ(m.MaxLat, -90, 90)
	length := xzLength(x1, y1, x2, y2, g)
	return sequenceCode2(x1, y1, length, g)
}

// xzLength computes the level l of the cell an object of the given
// normalized extent is stored at (Böhm et al.'s formula as implemented by
// GeoMesa).
func xzLength(x1, y1, x2, y2 float64, g int) int {
	maxDim := math.Max(x2-x1, y2-y1)
	if maxDim <= 0 {
		return g
	}
	l1 := int(math.Floor(math.Log(maxDim) / math.Log(0.5)))
	if l1 >= g {
		return g
	}
	if l1 < 0 {
		return 0
	}
	w2 := math.Pow(0.5, float64(l1+1)) // width at level l1+1
	if xzPredicate(x1, x2, w2) && xzPredicate(y1, y2, w2) {
		return l1 + 1
	}
	return l1
}

// xzPredicate reports whether [min,max] fits in the enlarged region of a
// level cell with width w containing min.
func xzPredicate(min, max, w float64) bool {
	return max <= math.Floor(min/w)*w+2*w
}

// sequenceCode2 walks length levels of the quadtree toward (px, py) and
// returns the preorder sequence number of the final cell.
func sequenceCode2(px, py float64, length, g int) uint64 {
	xmin, ymin, xmax, ymax := 0.0, 0.0, 1.0, 1.0
	var cs uint64
	for i := 0; i < length; i++ {
		childSub := subtreeSize2(g, i+1)
		xc, yc := (xmin+xmax)/2, (ymin+ymax)/2
		var q uint64
		if px >= xc {
			q |= 1
			xmin = xc
		} else {
			xmax = xc
		}
		if py >= yc {
			q |= 2
			ymin = yc
		} else {
			ymax = yc
		}
		cs += 1 + q*childSub
	}
	return cs
}

// Ranges returns sequence-code ranges covering every object whose MBR
// intersects the query window. The guarantee is one-sided: no false
// negatives; callers refine with exact geometry checks.
func (x XZ2) Ranges(query geom.MBR) []Range {
	g := x.g()
	qx1, qy1 := normXZ(query.MinLng, -180, 180), normXZ(query.MinLat, -90, 90)
	qx2, qy2 := normXZ(query.MaxLng, -180, 180), normXZ(query.MaxLat, -90, 90)
	maxLevel := xzMaxLevel(math.Max(qx2-qx1, qy2-qy1), g)

	var out []Range
	var walk func(level int, xmin, ymin float64, cs uint64)
	walk = func(level int, xmin, ymin float64, cs uint64) {
		w := math.Pow(0.5, float64(level))
		// The enlarged region of this cell: 2w x 2w anchored at (xmin, ymin).
		ex2, ey2 := xmin+2*w, ymin+2*w
		if qx1 > ex2 || qx2 < xmin || qy1 > ey2 || qy2 < ymin {
			return // no object stored here can touch the query
		}
		if qx1 <= xmin && qx2 >= ex2 && qy1 <= ymin && qy2 >= ey2 {
			// Query swallows the enlarged cell: every descendant matches.
			out = append(out, Range{cs, cs + subtreeSize2(g, level) - 1})
			return
		}
		if level >= maxLevel {
			// Deep enough relative to the query: over-approximate with
			// the whole subtree rather than recursing further (keeps the
			// no-false-negative guarantee, bounds plan size).
			out = append(out, Range{cs, cs + subtreeSize2(g, level) - 1})
			return
		}
		out = append(out, Range{cs, cs})
		if level >= g {
			return
		}
		childSub := subtreeSize2(g, level+1)
		half := w / 2
		for q := uint64(0); q < 4; q++ {
			cx := xmin + float64(q&1)*half
			cy := ymin + float64(q>>1)*half
			walk(level+1, cx, cy, cs+1+q*childSub)
		}
	}
	walk(0, 0, 0, 0)
	return mergeAdjacent(out)
}

// MaxCode returns the largest sequence code XZ2 can produce.
func (x XZ2) MaxCode() uint64 { return subtreeSize2(x.g(), 0) - 1 }

// XZ3 extends XZ-ordering with a third (time) dimension: the octree
// analogue of XZ2 over (lng, lat, time-fraction-within-period). GeoMesa
// uses it for non-point spatio-temporal data; the paper's XZ2T replaces
// it for the same reason Z2T replaces Z3.
type XZ3 struct {
	// G is the maximum octree depth; zero means XZDefaultResolution.
	G int
}

func (x XZ3) g() int {
	if x.G <= 0 {
		return XZDefaultResolution
	}
	return x.G
}

func subtreeSize3(g, level int) uint64 {
	return (pow8(g-level+1) - 1) / 7
}

// Index returns the XZ3 sequence code for an object with spatial MBR m
// spanning time fractions [t1, t2] of its period.
func (x XZ3) Index(m geom.MBR, t1, t2 float64) uint64 {
	g := x.g()
	x1, y1 := normXZ(m.MinLng, -180, 180), normXZ(m.MinLat, -90, 90)
	x2, y2 := normXZ(m.MaxLng, -180, 180), normXZ(m.MaxLat, -90, 90)
	z1, z2 := clamp01(t1), clamp01(t2)
	length := xzLength3(x1, y1, z1, x2, y2, z2, g)
	return sequenceCode3(x1, y1, z1, length, g)
}

func xzLength3(x1, y1, z1, x2, y2, z2 float64, g int) int {
	maxDim := math.Max(math.Max(x2-x1, y2-y1), z2-z1)
	if maxDim <= 0 {
		return g
	}
	l1 := int(math.Floor(math.Log(maxDim) / math.Log(0.5)))
	if l1 >= g {
		return g
	}
	if l1 < 0 {
		return 0
	}
	w2 := math.Pow(0.5, float64(l1+1))
	if xzPredicate(x1, x2, w2) && xzPredicate(y1, y2, w2) && xzPredicate(z1, z2, w2) {
		return l1 + 1
	}
	return l1
}

func sequenceCode3(px, py, pz float64, length, g int) uint64 {
	xmin, ymin, zmin := 0.0, 0.0, 0.0
	w := 1.0
	var cs uint64
	for i := 0; i < length; i++ {
		childSub := subtreeSize3(g, i+1)
		w /= 2
		var q uint64
		if px >= xmin+w {
			q |= 1
			xmin += w
		}
		if py >= ymin+w {
			q |= 2
			ymin += w
		}
		if pz >= zmin+w {
			q |= 4
			zmin += w
		}
		cs += 1 + q*childSub
	}
	return cs
}

// Ranges returns sequence-code ranges covering every object whose
// spatio-temporal box intersects the query (spatial window plus time
// fraction interval [t1, t2] within one period).
func (x XZ3) Ranges(query geom.MBR, t1, t2 float64) []Range {
	g := x.g()
	qx1, qy1 := normXZ(query.MinLng, -180, 180), normXZ(query.MinLat, -90, 90)
	qx2, qy2 := normXZ(query.MaxLng, -180, 180), normXZ(query.MaxLat, -90, 90)
	qz1, qz2 := clamp01(t1), clamp01(t2)

	maxLevel := xzMaxLevel(math.Max(math.Max(qx2-qx1, qy2-qy1), qz2-qz1), g)

	var out []Range
	var walk func(level int, xmin, ymin, zmin float64, cs uint64)
	walk = func(level int, xmin, ymin, zmin float64, cs uint64) {
		w := math.Pow(0.5, float64(level))
		ex2, ey2, ez2 := xmin+2*w, ymin+2*w, zmin+2*w
		if qx1 > ex2 || qx2 < xmin || qy1 > ey2 || qy2 < ymin || qz1 > ez2 || qz2 < zmin {
			return
		}
		if qx1 <= xmin && qx2 >= ex2 && qy1 <= ymin && qy2 >= ey2 && qz1 <= zmin && qz2 >= ez2 {
			out = append(out, Range{cs, cs + subtreeSize3(g, level) - 1})
			return
		}
		if level >= maxLevel {
			out = append(out, Range{cs, cs + subtreeSize3(g, level) - 1})
			return
		}
		out = append(out, Range{cs, cs})
		if level >= g {
			return
		}
		childSub := subtreeSize3(g, level+1)
		half := w / 2
		for q := uint64(0); q < 8; q++ {
			walk(level+1,
				xmin+float64(q&1)*half,
				ymin+float64(q>>1&1)*half,
				zmin+float64(q>>2)*half,
				cs+1+q*childSub)
		}
	}
	walk(0, 0, 0, 0, 0)
	return mergeAdjacent(out)
}

// MaxCode returns the largest sequence code XZ3 can produce.
func (x XZ3) MaxCode() uint64 { return subtreeSize3(x.g(), 0) - 1 }

// xzMaxLevel picks the recursion floor for XZ planning: a few levels past
// the level at which cells shrink below the query's largest extent. Below
// it, boundary-cell counts grow geometrically while extra precision only
// trims records the post-filter removes anyway.
func xzMaxLevel(queryDim float64, g int) int {
	if queryDim <= 0 {
		return g
	}
	fit := int(math.Floor(math.Log(queryDim) / math.Log(0.5))) // cell <= query at this level
	ml := fit + DefaultExtraLevels
	if ml > g {
		ml = g
	}
	if ml < 1 {
		ml = 1
	}
	return ml
}

func normXZ(v, lo, hi float64) float64 {
	return clamp01((v - lo) / (hi - lo))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
