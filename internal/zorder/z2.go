package zorder

import (
	"math"

	"just/internal/geom"
)

// normalize maps v from [lo, hi] onto the discrete grid [0, 2^bits-1].
func normalize(v, lo, hi float64, bits uint) uint32 {
	if v <= lo {
		return 0
	}
	max := uint32(1)<<bits - 1
	if v >= hi {
		return max
	}
	cells := math.Exp2(float64(bits))
	n := uint64((v - lo) / (hi - lo) * cells)
	if n > uint64(max) {
		n = uint64(max)
	}
	return uint32(n)
}

// denormalize returns the center of cell n on the [lo, hi] axis.
func denormalize(n uint32, lo, hi float64, bits uint) float64 {
	cells := math.Exp2(float64(bits))
	return lo + (float64(n)+0.5)/cells*(hi-lo)
}

// Z2 is the two-dimensional Z-order curve over the WGS84 lng/lat plane,
// used by JUST to index point-based spatial data.
type Z2 struct{}

// Index returns the 62-bit Morton code of the point.
func (Z2) Index(lng, lat float64) uint64 {
	return Encode2(
		normalize(lng, -180, 180, Z2Bits),
		normalize(lat, -90, 90, Z2Bits),
	)
}

// Invert returns the center of the curve cell identified by code z.
func (Z2) Invert(z uint64) (lng, lat float64) {
	x, y := Decode2(z)
	return denormalize(x, -180, 180, Z2Bits), denormalize(y, -90, 90, Z2Bits)
}

// Ranges decomposes the query window into Morton-code ranges that cover
// every point inside it. extraLevels <= 0 selects DefaultExtraLevels.
func (Z2) Ranges(window geom.MBR, extraLevels int) []Range {
	if extraLevels <= 0 {
		extraLevels = DefaultExtraLevels
	}
	return ranges2(
		normalize(window.MinLng, -180, 180, Z2Bits),
		normalize(window.MaxLng, -180, 180, Z2Bits),
		normalize(window.MinLat, -90, 90, Z2Bits),
		normalize(window.MaxLat, -90, 90, Z2Bits),
		extraLevels,
	)
}

// Z3 is the three-dimensional Z-order curve over (lng, lat, time) where
// time is a fraction in [0, 1) of the enclosing time period. GeoMesa uses
// it for point-based spatio-temporal data; the paper shows it loses its
// spatial filtering power when the period is long (motivation for Z2T).
type Z3 struct{}

// Index returns the 63-bit Morton code of a point observed at fraction
// tFrac of its time period.
func (Z3) Index(lng, lat, tFrac float64) uint64 {
	return Encode3(
		normalize(lng, -180, 180, Z3Bits),
		normalize(lat, -90, 90, Z3Bits),
		normalize(tFrac, 0, 1, Z3Bits),
	)
}

// Invert returns the cell-center coordinates of code v.
func (Z3) Invert(v uint64) (lng, lat, tFrac float64) {
	x, y, z := Decode3(v)
	return denormalize(x, -180, 180, Z3Bits),
		denormalize(y, -90, 90, Z3Bits),
		denormalize(z, 0, 1, Z3Bits)
}

// Ranges decomposes a spatio-temporal window (spatial MBR plus a time
// fraction interval within one period) into code ranges.
func (Z3) Ranges(window geom.MBR, tMinFrac, tMaxFrac float64, extraLevels int) []Range {
	if extraLevels <= 0 {
		extraLevels = DefaultExtraLevels
	}
	return ranges3(
		normalize(window.MinLng, -180, 180, Z3Bits),
		normalize(window.MaxLng, -180, 180, Z3Bits),
		normalize(window.MinLat, -90, 90, Z3Bits),
		normalize(window.MaxLat, -90, 90, Z3Bits),
		normalize(tMinFrac, 0, 1, Z3Bits),
		normalize(tMaxFrac, 0, 1, Z3Bits),
		extraLevels,
	)
}
