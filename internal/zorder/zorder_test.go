package zorder

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"just/internal/geom"
)

func TestInterleave2RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		v &= 1<<Z2Bits - 1
		return uint32(deinterleave2(interleave2(uint64(v)))) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterleave3RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		v &= 1<<Z3Bits - 1
		return uint32(deinterleave3(interleave3(uint64(v)))) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncode2RoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		x &= 1<<Z2Bits - 1
		y &= 1<<Z2Bits - 1
		gx, gy := Decode2(Encode2(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncode3RoundTrip(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= 1<<Z3Bits - 1
		y &= 1<<Z3Bits - 1
		z &= 1<<Z3Bits - 1
		gx, gy, gz := Decode3(Encode3(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncode2KnownValues(t *testing.T) {
	cases := []struct {
		x, y uint32
		want uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 0, 4},
		{3, 3, 15},
	}
	for _, c := range cases {
		if got := Encode2(c.x, c.y); got != c.want {
			t.Errorf("Encode2(%d,%d) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestMergeAdjacent(t *testing.T) {
	cases := []struct {
		in, want []Range
	}{
		{nil, nil},
		{[]Range{{1, 2}}, []Range{{1, 2}}},
		{[]Range{{1, 2}, {3, 4}}, []Range{{1, 4}}},
		{[]Range{{1, 2}, {2, 4}}, []Range{{1, 4}}},
		{[]Range{{1, 2}, {4, 5}}, []Range{{1, 2}, {4, 5}}},
		{[]Range{{1, 10}, {3, 4}, {11, 12}}, []Range{{1, 12}}},
	}
	for i, c := range cases {
		got := mergeAdjacent(append([]Range{}, c.in...))
		if len(got) != len(c.want) {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
			continue
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Errorf("case %d: got %v, want %v", i, got, c.want)
				break
			}
		}
	}
}

func rangesSortedDisjoint(t *testing.T, rs []Range) {
	t.Helper()
	for i, r := range rs {
		if r.Min > r.Max {
			t.Fatalf("range %d inverted: %v", i, r)
		}
		if i > 0 && rs[i-1].Max >= r.Min {
			t.Fatalf("ranges %d,%d overlap or unsorted: %v %v", i-1, i, rs[i-1], r)
		}
	}
}

func TestZ2RangesCoverWindowPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var z2 Z2
	for iter := 0; iter < 200; iter++ {
		cx := rng.Float64()*340 - 170
		cy := rng.Float64()*160 - 80
		w := rng.Float64()*2 + 1e-4
		h := rng.Float64()*2 + 1e-4
		win := geom.NewMBR(cx-w/2, cy-h/2, cx+w/2, cy+h/2).Clip(geom.WorldMBR)
		ranges := z2.Ranges(win, 0)
		rangesSortedDisjoint(t, ranges)
		for p := 0; p < 20; p++ {
			lng := win.MinLng + rng.Float64()*win.Width()
			lat := win.MinLat + rng.Float64()*win.Height()
			code := z2.Index(lng, lat)
			if !CoversCode(ranges, code) {
				t.Fatalf("point (%g,%g) in window %v not covered (code %d, %d ranges)",
					lng, lat, win, code, len(ranges))
			}
		}
	}
}

func TestZ2RangesExactAtFullDepth(t *testing.T) {
	// With full recursion depth the decomposition is exact at cell
	// granularity: points more than one cell outside the window must not
	// be covered.
	var z2 Z2
	win := geom.MBR{MinLng: 116.30, MinLat: 39.90, MaxLng: 116.31, MaxLat: 39.91}
	ranges := z2.Ranges(win, Z2Bits)
	cell := 360.0 / math.Exp2(Z2Bits)
	outside := []geom.Point{
		{Lng: win.MinLng - 10*cell, Lat: 39.905},
		{Lng: win.MaxLng + 10*cell, Lat: 39.905},
		{Lng: 116.305, Lat: win.MinLat - 10*cell},
		{Lng: 116.305, Lat: win.MaxLat + 10*cell},
	}
	for _, p := range outside {
		if CoversCode(ranges, z2.Index(p.Lng, p.Lat)) {
			t.Errorf("outside point %v covered by exact decomposition", p)
		}
	}
	if CoversCode(ranges, z2.Index(0, 0)) {
		t.Error("far-away point covered")
	}
}

func TestZ2RangesPrecisionImprovesWithDepth(t *testing.T) {
	var z2 Z2
	win := geom.MBR{MinLng: 10, MinLat: 10, MaxLng: 10.5, MaxLat: 10.5}
	span := func(rs []Range) (total float64) {
		for _, r := range rs {
			total += float64(r.Max - r.Min + 1)
		}
		return total
	}
	shallow := span(z2.Ranges(win, 1))
	deep := span(z2.Ranges(win, 6))
	if deep > shallow {
		t.Fatalf("deeper decomposition covers more codes: %g > %g", deep, shallow)
	}
}

func TestZ3RangesCoverWindowPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var z3 Z3
	for iter := 0; iter < 100; iter++ {
		cx := rng.Float64()*340 - 170
		cy := rng.Float64()*160 - 80
		w := rng.Float64() + 1e-3
		win := geom.NewMBR(cx-w/2, cy-w/2, cx+w/2, cy+w/2).Clip(geom.WorldMBR)
		t1 := rng.Float64() * 0.8
		t2 := t1 + rng.Float64()*(1-t1)
		ranges := z3.Ranges(win, t1, t2, 0)
		rangesSortedDisjoint(t, ranges)
		for p := 0; p < 10; p++ {
			lng := win.MinLng + rng.Float64()*win.Width()
			lat := win.MinLat + rng.Float64()*win.Height()
			tf := t1 + rng.Float64()*(t2-t1)
			if !CoversCode(ranges, z3.Index(lng, lat, tf)) {
				t.Fatalf("point (%g,%g,%g) not covered by %v t[%g,%g]", lng, lat, tf, win, t1, t2)
			}
		}
	}
}

func TestXZLengthInvariant(t *testing.T) {
	// The object must fit inside the enlarged cell at the chosen level.
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 1000; iter++ {
		x1 := rng.Float64()
		y1 := rng.Float64()
		x2 := math.Min(1, x1+rng.Float64()*0.3)
		y2 := math.Min(1, y1+rng.Float64()*0.3)
		l := xzLength(x1, y1, x2, y2, XZDefaultResolution)
		if l < 0 || l > XZDefaultResolution {
			t.Fatalf("length %d out of range", l)
		}
		if l == 0 {
			continue
		}
		w := math.Pow(0.5, float64(l))
		if !xzPredicate(x1, x2, w) || !xzPredicate(y1, y2, w) {
			t.Fatalf("object (%g,%g,%g,%g) does not fit enlarged cell at level %d",
				x1, y1, x2, y2, l)
		}
	}
}

func TestXZ2NoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	xz := XZ2{}
	for iter := 0; iter < 300; iter++ {
		// Random object box.
		ox := rng.Float64()*300 - 150
		oy := rng.Float64()*140 - 70
		obj := geom.NewMBR(ox, oy, ox+rng.Float64()*5, oy+rng.Float64()*5).Clip(geom.WorldMBR)
		// Random query window.
		qx := rng.Float64()*300 - 150
		qy := rng.Float64()*140 - 70
		query := geom.NewMBR(qx, qy, qx+rng.Float64()*20, qy+rng.Float64()*20).Clip(geom.WorldMBR)
		if !obj.Intersects(query) {
			continue
		}
		code := xz.Index(obj)
		ranges := xz.Ranges(query)
		rangesSortedDisjoint(t, ranges)
		if !CoversCode(ranges, code) {
			t.Fatalf("object %v (code %d) intersects query %v but not covered by %d ranges",
				obj, code, query, len(ranges))
		}
	}
}

func TestXZ2CodeBounds(t *testing.T) {
	xz := XZ2{}
	rng := rand.New(rand.NewSource(5))
	max := xz.MaxCode()
	for iter := 0; iter < 1000; iter++ {
		x := rng.Float64()*360 - 180
		y := rng.Float64()*180 - 90
		m := geom.NewMBR(x, y, math.Min(180, x+rng.Float64()*10), math.Min(90, y+rng.Float64()*10))
		if c := xz.Index(m); c > max {
			t.Fatalf("code %d exceeds max %d for %v", c, max, m)
		}
	}
	// The world MBR fits the enlarged cell of the first quadrant, so the
	// XZ formula stores it at level 1, code 1 — and a world query must
	// cover it.
	if got := xz.Index(geom.WorldMBR); got != 1 {
		t.Errorf("world MBR code = %d, want 1", got)
	}
	if !CoversCode(xz.Ranges(geom.WorldMBR), xz.Index(geom.WorldMBR)) {
		t.Error("world query does not cover world object")
	}
}

func TestXZ2DistinctSmallObjects(t *testing.T) {
	// Small, well-separated objects should land in different deep cells.
	xz := XZ2{}
	a := geom.MBR{MinLng: 10, MinLat: 10, MaxLng: 10.001, MaxLat: 10.001}
	b := geom.MBR{MinLng: -120, MinLat: 45, MaxLng: -119.999, MaxLat: 45.001}
	if xz.Index(a) == xz.Index(b) {
		t.Fatal("distant small objects share a code")
	}
}

func TestXZ3NoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	xz := XZ3{}
	for iter := 0; iter < 300; iter++ {
		ox := rng.Float64()*300 - 150
		oy := rng.Float64()*140 - 70
		obj := geom.NewMBR(ox, oy, ox+rng.Float64()*5, oy+rng.Float64()*5).Clip(geom.WorldMBR)
		ot1 := rng.Float64() * 0.9
		ot2 := math.Min(1, ot1+rng.Float64()*0.2)
		qx := rng.Float64()*300 - 150
		qy := rng.Float64()*140 - 70
		query := geom.NewMBR(qx, qy, qx+rng.Float64()*20, qy+rng.Float64()*20).Clip(geom.WorldMBR)
		qt1 := rng.Float64() * 0.9
		qt2 := math.Min(1, qt1+rng.Float64()*0.5)
		if !obj.Intersects(query) || ot2 < qt1 || ot1 > qt2 {
			continue
		}
		code := xz.Index(obj, ot1, ot2)
		ranges := xz.Ranges(query, qt1, qt2)
		rangesSortedDisjoint(t, ranges)
		if !CoversCode(ranges, code) {
			t.Fatalf("object %v t[%g,%g] (code %d) intersects query %v t[%g,%g] but not covered",
				obj, ot1, ot2, code, query, qt1, qt2)
		}
	}
}

func TestNormalizeBounds(t *testing.T) {
	if normalize(-180, -180, 180, Z2Bits) != 0 {
		t.Error("min should map to 0")
	}
	if normalize(180, -180, 180, Z2Bits) != 1<<Z2Bits-1 {
		t.Error("max should map to top cell")
	}
	if normalize(-200, -180, 180, Z2Bits) != 0 {
		t.Error("below-min should clamp to 0")
	}
	if normalize(200, -180, 180, Z2Bits) != 1<<Z2Bits-1 {
		t.Error("above-max should clamp to top")
	}
	// Monotonicity.
	prev := uint32(0)
	for v := -180.0; v <= 180; v += 0.37 {
		n := normalize(v, -180, 180, Z2Bits)
		if n < prev {
			t.Fatalf("normalize not monotone at %g", v)
		}
		prev = n
	}
}

func TestDenormalizeInvertsNormalize(t *testing.T) {
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		v := math.Mod(raw, 180)
		n := normalize(v, -180, 180, Z2Bits)
		back := denormalize(n, -180, 180, Z2Bits)
		return math.Abs(back-v) < 360/math.Exp2(Z2Bits)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZ2IndexLocality(t *testing.T) {
	// Nearby points should share long code prefixes more often than
	// distant points: verify the basic cell adjacency property instead —
	// a point and its cell center map to the same code.
	var z2 Z2
	code := z2.Index(116.4, 39.9)
	lng, lat := z2.Invert(code)
	if z2.Index(lng, lat) != code {
		t.Fatal("cell center should map back to the same code")
	}
}

func BenchmarkZ2Index(b *testing.B) {
	var z2 Z2
	for i := 0; i < b.N; i++ {
		_ = z2.Index(116.4, 39.9)
	}
}

func BenchmarkZ2Ranges3km(b *testing.B) {
	var z2 Z2
	win := geom.SquareAround(geom.Point{Lng: 116.4, Lat: 39.9}, 3000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = z2.Ranges(win, 0)
	}
}

func BenchmarkXZ2Ranges3km(b *testing.B) {
	xz := XZ2{}
	win := geom.SquareAround(geom.Point{Lng: 116.4, Lat: 39.9}, 3000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = xz.Ranges(win)
	}
}
