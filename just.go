// Package just is the public embedded API of the JUST engine — the Go
// reproduction of "JUST: JD Urban Spatio-Temporal Data Engine"
// (ICDE 2020). It manages large spatio-temporal datasets on an LSM
// key-value substrate with the paper's Z2T/XZ2T space-filling-curve
// indexes, runs JustQL (a SQL dialect with spatio-temporal predicates
// and analysis operators), and answers spatial range, spatio-temporal
// range and k-NN queries.
//
// Quick start:
//
//	eng, err := just.Open(just.Config{Dir: "/tmp/just-data"})
//	sess := eng.Session("alice")
//	sess.Execute(`CREATE TABLE pts (fid integer:primary key, time date, geom point)`)
//	sess.Execute(`INSERT INTO pts VALUES (1, '2019-10-01 08:00:00', st_makePoint(116.4, 39.9))`)
//	rs, err := sess.ExecuteQuery(`SELECT fid FROM pts
//	    WHERE geom WITHIN st_makeMBR(116, 39, 117, 40)
//	    AND time BETWEEN '2019-10-01' AND '2019-10-02'`)
//	for rs.HasNext() {
//	    row := rs.Next()
//	    ...
//	}
package just

import (
	"context"
	"time"

	"just/internal/core"
	"just/internal/exec"
	"just/internal/geom"
	"just/internal/kv"
	"just/internal/sql"
	"just/internal/table"
)

// Re-exported core types so callers never import internal packages.
type (
	// Point is a WGS84 longitude/latitude point.
	Point = geom.Point
	// TPoint is a timestamped point (Unix milliseconds).
	TPoint = geom.TPoint
	// MBR is a minimum bounding rectangle.
	MBR = geom.MBR
	// Geometry is any spatial value (Point, *LineString, *Polygon, ...).
	Geometry = geom.Geometry
	// LineString is a polyline geometry.
	LineString = geom.LineString
	// Polygon is a polygon geometry with optional holes.
	Polygon = geom.Polygon
	// Row is one record; see exec.Row for the value conventions.
	Row = exec.Row
	// DataFrame is the distributed result abstraction.
	DataFrame = exec.DataFrame
	// Trajectory is the native view of a trajectory-plugin row.
	Trajectory = table.Trajectory
	// Neighbor is one k-NN result.
	Neighbor = core.Neighbor
	// TableDesc is a catalog descriptor for programmatic table creation.
	TableDesc = table.Desc
	// Column is one table column definition.
	Column = table.Column
)

// NewMBR builds a normalized MBR from two corners.
func NewMBR(lng1, lat1, lng2, lat2 float64) MBR { return geom.NewMBR(lng1, lat1, lng2, lat2) }

// SquareAround builds an approximate square window (meters on a side)
// centered at p — the paper's "N×N km spatial window".
func SquareAround(p Point, sideMeters float64) MBR { return geom.SquareAround(p, sideMeters) }

// Config tunes an engine; Dir is required.
type Config struct {
	// Dir is the storage root directory.
	Dir string
	// Workers sizes the shared execution pool (0 = NumCPU).
	Workers int
	// MemoryBudget caps in-memory DataFrame bytes (0 = unlimited).
	MemoryBudget int64
	// Shards is the index shard count (0 = 4).
	Shards int
	// Period is the Z2T/XZ2T time-period length (0 = 24h).
	Period time.Duration
	// ViewTTL evicts idle views (0 = never).
	ViewTTL time.Duration
	// DisableWAL trades durability for bulk-load speed.
	DisableWAL bool
	// DisableFieldCompression turns off the paper's compression
	// mechanism (the JUSTnc variant).
	DisableFieldCompression bool
	// RegionServers simulates an HBase cluster size (0 = 5, the paper's).
	RegionServers int
	// BlockCompression gzip-compresses SSTable blocks (legacy switch;
	// prefer Codec).
	BlockCompression bool
	// Codec picks the SSTable block and WAL envelope codec: "none",
	// "gzip" or "lz4" ("" defers to BlockCompression). Existing tables
	// keep their per-block codec; future flushes and compactions use
	// this one.
	Codec string
}

// Engine is an embedded JUST instance.
type Engine struct {
	core *core.Engine
}

// Open creates or reopens an engine.
func Open(cfg Config) (*Engine, error) {
	c, err := core.Open(core.Config{
		Dir:          cfg.Dir,
		Workers:      cfg.Workers,
		MemoryBudget: cfg.MemoryBudget,
		Shards:       cfg.Shards,
		Period:       cfg.Period,
		ViewTTL:      cfg.ViewTTL,
		Cluster: kv.ClusterOptions{
			Options: kv.Options{
				DisableWAL: cfg.DisableWAL,
				Compress:   cfg.BlockCompression,
				Codec:      cfg.Codec,
			},
			Servers: cfg.RegionServers,
		},
		DisableFieldCompression: cfg.DisableFieldCompression,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{core: c}, nil
}

// Close shuts the engine down.
func (e *Engine) Close() error { return e.core.Close() }

// Session opens a JustQL session in the given user namespace ("" =
// public). Sessions share the engine's execution context.
func (e *Engine) Session(user string) *Session {
	return &Session{sess: sql.NewSession(e.core, user), user: user, engine: e}
}

// Core exposes the underlying engine for advanced integrations and the
// benchmark harness.
func (e *Engine) Core() *core.Engine { return e.core }

// Flush persists buffered writes.
func (e *Engine) Flush() error { return e.core.Flush() }

// DiskSize reports total on-disk bytes.
func (e *Engine) DiskSize() int64 { return e.core.DiskSize() }

// CreateTable registers a table programmatically (the JustQL CREATE
// TABLE path is Session.Execute).
func (e *Engine) CreateTable(desc *TableDesc) error { return e.core.CreateTable(desc) }

// CreateTrajectoryTable registers a trajectory plugin table.
func (e *Engine) CreateTrajectoryTable(user, name string) error {
	return e.core.CreateTableAs(user, name, "trajectory")
}

// Insert writes rows into a table.
func (e *Engine) Insert(user, name string, rows []Row) error {
	return e.core.Insert(user, name, rows)
}

// BulkInsert parallelizes ingest and flushes at the end.
func (e *Engine) BulkInsert(user, name string, rows []Row) error {
	return e.core.BulkInsert(user, name, rows)
}

// InsertTrajectories bulk-loads trajectories into a plugin table.
func (e *Engine) InsertTrajectories(user, name string, trajs []*Trajectory) error {
	rows := make([]Row, len(trajs))
	for i, tr := range trajs {
		row, err := tr.Row()
		if err != nil {
			return err
		}
		rows[i] = row
	}
	return e.core.BulkInsert(user, name, rows)
}

// SpatialRange answers a spatial range query.
func (e *Engine) SpatialRange(user, name string, window MBR) (*DataFrame, error) {
	return e.core.SpatialRange(context.Background(), user, name, window)
}

// STRange answers a spatio-temporal range query ([tmin, tmax] in Unix
// milliseconds, inclusive).
func (e *Engine) STRange(user, name string, window MBR, tmin, tmax int64) (*DataFrame, error) {
	return e.core.STRange(context.Background(), user, name, window, tmin, tmax)
}

// KNN answers a k-nearest-neighbor query (Algorithm 1 of the paper).
func (e *Engine) KNN(user, name string, q Point, k int) ([]Neighbor, error) {
	return e.core.KNN(context.Background(), user, name, q, k, core.KNNOptions{})
}

// Session executes JustQL.
type Session struct {
	sess   *sql.Session
	engine *Engine
	user   string
}

// User returns the session's namespace.
func (s *Session) User() string { return s.user }

// Execute runs any JustQL statement. DDL/DML return a nil ResultSet with
// the engine's message available via the error being nil.
func (s *Session) Execute(justql string) (*ResultSet, error) {
	res, err := s.sess.Execute(justql)
	if err != nil {
		return nil, err
	}
	return newResultSet(res), nil
}

// ExecuteQuery is an alias of Execute matching the paper's SDK snippet
// (Fig. 2): `rs := client.executeQuery(sql)`.
func (s *Session) ExecuteQuery(justql string) (*ResultSet, error) {
	return s.Execute(justql)
}
