package just

import (
	"fmt"
	"testing"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := Open(Config{Dir: t.TempDir(), Workers: 4, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestPublicAPIQuickstart(t *testing.T) {
	e := newEngine(t)
	sess := e.Session("demo")
	if _, err := sess.Execute(`CREATE TABLE pts (fid integer:primary key, time date, geom point)`); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute(`INSERT INTO pts VALUES
		(1, '2019-10-01 08:00:00', st_makePoint(116.40, 39.90)),
		(2, '2019-10-01 09:00:00', st_makePoint(116.41, 39.91)),
		(3, '2019-10-02 08:00:00', st_makePoint(100.00, 10.00))`); err != nil {
		t.Fatal(err)
	}
	rs, err := sess.ExecuteQuery(`SELECT fid FROM pts
		WHERE geom WITHIN st_makeMBR(116, 39, 117, 40)
		AND time BETWEEN '2019-10-01' AND '2019-10-01 23:59:59'`)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	n := 0
	for rs.HasNext() {
		row := rs.Next()
		if row[0].(int64) == 3 {
			t.Fatal("row 3 should be filtered")
		}
		n++
	}
	if n != 2 {
		t.Fatalf("rows = %d, want 2", n)
	}
}

func TestPublicAPITypedQueries(t *testing.T) {
	e := newEngine(t)
	sess := e.Session("")
	if _, err := sess.Execute(`CREATE TABLE pts (fid integer:primary key, time date, geom point)`); err != nil {
		t.Fatal(err)
	}
	var rows []Row
	for i := 0; i < 100; i++ {
		rows = append(rows, Row{int64(i), int64(i) * 60000, Point{Lng: 116 + float64(i)*0.001, Lat: 39.9}})
	}
	if err := e.BulkInsert("", "pts", rows); err != nil {
		t.Fatal(err)
	}
	df, err := e.SpatialRange("", "pts", NewMBR(116, 39.8, 116.05, 40))
	if err != nil {
		t.Fatal(err)
	}
	if df.Count() != 51 {
		t.Fatalf("spatial = %d", df.Count())
	}
	df2, err := e.STRange("", "pts", NewMBR(115, 39, 117, 41), 0, 10*60000)
	if err != nil {
		t.Fatal(err)
	}
	if df2.Count() != 11 {
		t.Fatalf("st = %d", df2.Count())
	}
	nbs, err := e.KNN("", "pts", Point{Lng: 116.05, Lat: 39.9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) != 5 || nbs[0].Row[0] != int64(50) {
		t.Fatalf("knn = %v", nbs)
	}
}

func TestPublicAPITrajectories(t *testing.T) {
	e := newEngine(t)
	if err := e.CreateTrajectoryTable("", "traj"); err != nil {
		t.Fatal(err)
	}
	var trajs []*Trajectory
	for i := 0; i < 10; i++ {
		trajs = append(trajs, &Trajectory{
			ID: fmt.Sprintf("t%d", i),
			Points: []TPoint{
				{Point: Point{Lng: 116.4, Lat: 39.9}, T: int64(i) * 1000},
				{Point: Point{Lng: 116.5, Lat: 39.95}, T: int64(i)*1000 + 60000},
			},
		})
	}
	if err := e.InsertTrajectories("", "traj", trajs); err != nil {
		t.Fatal(err)
	}
	df, err := e.SpatialRange("", "traj", NewMBR(116, 39, 117, 40))
	if err != nil {
		t.Fatal(err)
	}
	if df.Count() != 10 {
		t.Fatalf("traj query = %d", df.Count())
	}
}

func TestResultSetCursor(t *testing.T) {
	e := newEngine(t)
	sess := e.Session("")
	sess.Execute(`CREATE TABLE p (fid integer:primary key, geom point)`)
	sess.Execute(`INSERT INTO p VALUES (1, st_makePoint(1,1)), (2, st_makePoint(2,2))`)
	rs, err := sess.Execute(`SELECT fid FROM p WHERE geom WITHIN st_makeMBR(0,0,3,3) ORDER BY fid`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 || rs.Columns()[0] != "fid" {
		t.Fatalf("rs = %v %d", rs.Columns(), rs.Len())
	}
	var got []int64
	for rs.HasNext() {
		got = append(got, rs.Next()[0].(int64))
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("cursor = %v", got)
	}
	rs.Reset()
	if !rs.HasNext() {
		t.Fatal("reset failed")
	}
	if s := rs.String(); s == "" {
		t.Fatal("empty render")
	}
	rs.Close()
	// DDL results carry messages.
	res, err := e.Session("").Execute(`CREATE TABLE q (fid integer:primary key, geom point)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Message() == "" || res.HasNext() {
		t.Fatalf("ddl result = %q", res.Message())
	}
}
