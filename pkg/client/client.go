// Package client is the Go SDK for a JUST server (Section VII-B): it
// speaks the HTTP protocol and exposes the cursor-style ResultSet of the
// paper's Fig. 2 snippet —
//
//	rs, err := client.ExecuteQuery(sql)
//	for rs.HasNext() {
//	    row, err := rs.Next()
//	    ...
//	}
//	rs.Close()
//
// Large results arrive in multiple transmissions; the ResultSet fetches
// follow-up pages transparently. Close releases the server-side cursor
// early when a caller abandons a result mid-page (otherwise the server
// TTL reclaims it).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Client talks to one JUST server on behalf of one user.
type Client struct {
	baseURL string
	user    string
	http    *http.Client
}

// Connect creates a client; baseURL like "http://localhost:8045".
func Connect(baseURL, user string) *Client {
	return &Client{
		baseURL: baseURL,
		user:    user,
		http:    &http.Client{Timeout: 120 * time.Second},
	}
}

type sqlRequest struct {
	User string `json:"user"`
	SQL  string `json:"sql"`
}

type sqlResponse struct {
	Message string   `json:"message"`
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
	Cursor  string   `json:"cursor"`
	Total   int      `json:"total"`
	Error   string   `json:"error"`
}

// ExecuteQuery runs a JustQL statement and returns a paging cursor.
func (c *Client) ExecuteQuery(justql string) (*ResultSet, error) {
	return c.ExecuteQueryContext(context.Background(), justql)
}

// ExecuteQueryContext is ExecuteQuery bounded by a context: cancelling
// it aborts the HTTP request, and the server cancels the in-flight
// query when the connection drops.
func (c *Client) ExecuteQueryContext(ctx context.Context, justql string) (*ResultSet, error) {
	body, err := json.Marshal(sqlRequest{User: c.user, SQL: justql})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+"/api/v1/sql", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	var out sqlResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: bad response: %w", err)
	}
	if out.Error != "" {
		return nil, fmt.Errorf("client: server error: %s", out.Error)
	}
	return &ResultSet{
		client:  c,
		ctx:     ctx,
		message: out.Message,
		columns: out.Columns,
		rows:    out.Rows,
		cursor:  out.Cursor,
	}, nil
}

// Execute is an alias of ExecuteQuery for DDL/DML readability.
func (c *Client) Execute(justql string) (*ResultSet, error) { return c.ExecuteQuery(justql) }

// ExecuteContext is an alias of ExecuteQueryContext for DDL/DML
// readability.
func (c *Client) ExecuteContext(ctx context.Context, justql string) (*ResultSet, error) {
	return c.ExecuteQueryContext(ctx, justql)
}

// Health pings the server.
func (c *Client) Health() error {
	resp, err := c.http.Get(c.baseURL + "/api/v1/health")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: health status %d", resp.StatusCode)
	}
	return nil
}

// fetch retrieves the next page of a cursor.
func (c *Client) fetch(ctx context.Context, cursor string) (*sqlResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/api/v1/fetch?cursor="+cursor, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out sqlResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if out.Error != "" {
		return nil, fmt.Errorf("client: server error: %s", out.Error)
	}
	return &out, nil
}

// closeCursor deletes a server-side cursor.
func (c *Client) closeCursor(cursor string) error {
	req, err := http.NewRequest(http.MethodDelete, c.baseURL+"/api/v1/fetch?cursor="+cursor, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// ResultSet is the client-side cursor. Rows are []any with JSON-decoded
// values (numbers arrive as float64; geometries as {"wkt": ...} maps).
type ResultSet struct {
	client  *Client
	ctx     context.Context
	message string
	columns []string
	rows    [][]any
	pos     int
	cursor  string
	err     error
	closed  bool
}

// Message returns the DDL/DML message.
func (rs *ResultSet) Message() string { return rs.message }

// Columns returns the result column names.
func (rs *ResultSet) Columns() []string { return rs.columns }

// HasNext reports whether another row is available, fetching the next
// transmission when the local page is exhausted.
func (rs *ResultSet) HasNext() bool {
	if rs.err != nil || rs.closed {
		return false
	}
	if rs.pos < len(rs.rows) {
		return true
	}
	if rs.cursor == "" {
		return false
	}
	ctx := rs.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	page, err := rs.client.fetch(ctx, rs.cursor)
	if err != nil {
		rs.err = err
		return false
	}
	rs.rows = page.Rows
	rs.cursor = page.Cursor
	rs.pos = 0
	return len(rs.rows) > 0
}

// Next returns the next row; call HasNext first.
func (rs *ResultSet) Next() ([]any, error) {
	if rs.err != nil {
		return nil, rs.err
	}
	if rs.closed {
		return nil, fmt.Errorf("client: result set closed")
	}
	if rs.pos >= len(rs.rows) {
		return nil, fmt.Errorf("client: past end of result set")
	}
	row := rs.rows[rs.pos]
	rs.pos++
	return row, nil
}

// Close releases the result set. If pages remain unfetched on the
// server it deletes the server-side cursor, freeing its memory without
// waiting for the TTL. Closing an exhausted or already-closed result
// set is a no-op. Safe to defer immediately after ExecuteQuery.
func (rs *ResultSet) Close() error {
	if rs.closed {
		return nil
	}
	rs.closed = true
	rs.rows = nil
	if rs.cursor == "" {
		return nil
	}
	cur := rs.cursor
	rs.cursor = ""
	return rs.client.closeCursor(cur)
}

// Err returns any paging error encountered by HasNext.
func (rs *ResultSet) Err() error { return rs.err }
