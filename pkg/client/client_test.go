package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// The happy paths (paging, DDL, isolation) are covered end-to-end in
// internal/server; these tests pin the SDK's error behaviour against a
// scripted server.

func TestClientServerError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"error": "boom"})
	}))
	defer ts.Close()
	c := Connect(ts.URL, "u")
	if _, err := c.ExecuteQuery("SELECT 1"); err == nil {
		t.Fatal("server error should surface")
	}
}

func TestClientBadJSON(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not json"))
	}))
	defer ts.Close()
	c := Connect(ts.URL, "u")
	if _, err := c.ExecuteQuery("SELECT 1"); err == nil {
		t.Fatal("bad JSON should surface")
	}
}

func TestClientUnreachable(t *testing.T) {
	c := Connect("http://127.0.0.1:1", "u")
	if _, err := c.ExecuteQuery("SELECT 1"); err == nil {
		t.Fatal("unreachable server should surface")
	}
	if err := c.Health(); err == nil {
		t.Fatal("health check against dead server should fail")
	}
}

func TestResultSetPastEnd(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(sqlResponse{
			Columns: []string{"a"},
			Rows:    [][]any{{1.0}},
			Total:   1,
		})
	}))
	defer ts.Close()
	c := Connect(ts.URL, "u")
	rs, err := c.ExecuteQuery("SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if !rs.HasNext() {
		t.Fatal("row expected")
	}
	if _, err := rs.Next(); err != nil {
		t.Fatal(err)
	}
	if rs.HasNext() {
		t.Fatal("no more rows expected")
	}
	if _, err := rs.Next(); err == nil {
		t.Fatal("Next past end should error")
	}
}

func TestExecuteQueryContextCanceled(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer ts.Close()
	c := Connect(ts.URL, "u")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.ExecuteQueryContext(ctx, "SELECT 1"); err == nil {
		t.Fatal("canceled context should abort the request")
	}
}

func TestResultSetCloseDeletesCursor(t *testing.T) {
	var deleted string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/v1/sql" {
			json.NewEncoder(w).Encode(sqlResponse{
				Columns: []string{"a"},
				Rows:    [][]any{{1.0}},
				Cursor:  "cur-7",
				Total:   2,
			})
			return
		}
		if r.Method == http.MethodDelete {
			deleted = r.URL.Query().Get("cursor")
			json.NewEncoder(w).Encode(map[string]bool{"closed": true})
			return
		}
		t.Errorf("unexpected %s %s after Close", r.Method, r.URL.Path)
	}))
	defer ts.Close()
	c := Connect(ts.URL, "u")
	rs, err := c.ExecuteQuery("SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if deleted != "cur-7" {
		t.Fatalf("server-side cursor not deleted; got %q", deleted)
	}
	if rs.HasNext() {
		t.Fatal("closed result set must not iterate")
	}
	if _, err := rs.Next(); err == nil {
		t.Fatal("Next after Close should error")
	}
	if err := rs.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestResultSetCloseWithoutCursorIsLocal(t *testing.T) {
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		json.NewEncoder(w).Encode(sqlResponse{Columns: []string{"a"}, Rows: [][]any{{1.0}}, Total: 1})
	}))
	defer ts.Close()
	c := Connect(ts.URL, "u")
	rs, err := c.ExecuteQuery("SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if calls != 1 {
		t.Fatalf("close of cursorless result made %d extra requests", calls-1)
	}
}

func TestClientPagingFetchFailure(t *testing.T) {
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if r.URL.Path == "/api/v1/sql" {
			json.NewEncoder(w).Encode(sqlResponse{
				Columns: []string{"a"},
				Rows:    [][]any{{1.0}},
				Cursor:  "cur-1",
				Total:   2,
			})
			return
		}
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(sqlResponse{Error: "unknown cursor"})
	}))
	defer ts.Close()
	c := Connect(ts.URL, "u")
	rs, err := c.ExecuteQuery("SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	rs.Next() // consume the first page (HasNext true by position)
	if rs.HasNext() {
		t.Fatal("failed fetch should end iteration")
	}
	if rs.Err() == nil {
		t.Fatal("fetch failure should be recorded")
	}
}
