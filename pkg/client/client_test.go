package client

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// The happy paths (paging, DDL, isolation) are covered end-to-end in
// internal/server; these tests pin the SDK's error behaviour against a
// scripted server.

func TestClientServerError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"error": "boom"})
	}))
	defer ts.Close()
	c := Connect(ts.URL, "u")
	if _, err := c.ExecuteQuery("SELECT 1"); err == nil {
		t.Fatal("server error should surface")
	}
}

func TestClientBadJSON(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not json"))
	}))
	defer ts.Close()
	c := Connect(ts.URL, "u")
	if _, err := c.ExecuteQuery("SELECT 1"); err == nil {
		t.Fatal("bad JSON should surface")
	}
}

func TestClientUnreachable(t *testing.T) {
	c := Connect("http://127.0.0.1:1", "u")
	if _, err := c.ExecuteQuery("SELECT 1"); err == nil {
		t.Fatal("unreachable server should surface")
	}
	if err := c.Health(); err == nil {
		t.Fatal("health check against dead server should fail")
	}
}

func TestResultSetPastEnd(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(sqlResponse{
			Columns: []string{"a"},
			Rows:    [][]any{{1.0}},
			Total:   1,
		})
	}))
	defer ts.Close()
	c := Connect(ts.URL, "u")
	rs, err := c.ExecuteQuery("SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if !rs.HasNext() {
		t.Fatal("row expected")
	}
	if _, err := rs.Next(); err != nil {
		t.Fatal(err)
	}
	if rs.HasNext() {
		t.Fatal("no more rows expected")
	}
	if _, err := rs.Next(); err == nil {
		t.Fatal("Next past end should error")
	}
}

func TestClientPagingFetchFailure(t *testing.T) {
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if r.URL.Path == "/api/v1/sql" {
			json.NewEncoder(w).Encode(sqlResponse{
				Columns: []string{"a"},
				Rows:    [][]any{{1.0}},
				Cursor:  "cur-1",
				Total:   2,
			})
			return
		}
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(sqlResponse{Error: "unknown cursor"})
	}))
	defer ts.Close()
	c := Connect(ts.URL, "u")
	rs, err := c.ExecuteQuery("SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	rs.Next() // consume the first page (HasNext true by position)
	if rs.HasNext() {
		t.Fatal("failed fetch should end iteration")
	}
	if rs.Err() == nil {
		t.Fatal("fetch failure should be recorded")
	}
}
