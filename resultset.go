package just

import (
	"fmt"
	"strings"

	"just/internal/exec"
	"just/internal/sql"
)

// ResultSet is the database-cursor view of a statement result (Fig. 2:
// users "traverse the result in a way like the database cursor"). DDL
// and DML statements produce a message-only result with no rows.
type ResultSet struct {
	message string
	columns []string
	rows    []Row
	pos     int
	frame   *exec.DataFrame
}

func newResultSet(res *sql.Result) *ResultSet {
	rs := &ResultSet{message: res.Message}
	if res.Frame != nil {
		rs.frame = res.Frame
		rs.columns = res.Frame.Schema().Names()
		rs.rows = res.Frame.Collect()
	}
	return rs
}

// Message returns the engine message for DDL/DML statements.
func (rs *ResultSet) Message() string { return rs.message }

// Columns returns the result column names (nil for DDL/DML).
func (rs *ResultSet) Columns() []string { return rs.columns }

// Len returns the number of rows.
func (rs *ResultSet) Len() int { return len(rs.rows) }

// HasNext reports whether another row is available.
func (rs *ResultSet) HasNext() bool { return rs.pos < len(rs.rows) }

// Next returns the next row; it panics past the end (guard with
// HasNext, as in the paper's snippet).
func (rs *ResultSet) Next() Row {
	row := rs.rows[rs.pos]
	rs.pos++
	return row
}

// Rows returns all rows at once.
func (rs *ResultSet) Rows() []Row { return rs.rows }

// Reset rewinds the cursor.
func (rs *ResultSet) Reset() { rs.pos = 0 }

// Close releases the result's memory back to the engine budget.
func (rs *ResultSet) Close() {
	if rs.frame != nil {
		rs.frame.Release()
		rs.frame = nil
	}
	rs.rows = nil
}

// String renders a compact table for CLI display.
func (rs *ResultSet) String() string {
	if rs.columns == nil {
		return rs.message
	}
	var sb strings.Builder
	sb.WriteString(strings.Join(rs.columns, " | "))
	sb.WriteByte('\n')
	for i, row := range rs.rows {
		if i == 20 {
			fmt.Fprintf(&sb, "... (%d rows total)\n", len(rs.rows))
			break
		}
		for j, v := range row {
			if j > 0 {
				sb.WriteString(" | ")
			}
			if g, ok := v.(Geometry); ok {
				sb.WriteString(g.WKT())
			} else {
				fmt.Fprintf(&sb, "%v", v)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
