#!/usr/bin/env bash
# Multi-process cluster smoke test: three region-server processes, one
# router process, SQL ingest and scan over real TCP, then a kill of one
# region server mid-workload to prove no acknowledged write is lost
# (replication 1). CI runs this; it is also handy locally:
#
#   ./scripts/cluster-smoke.sh
set -euo pipefail

WORK=$(mktemp -d)
BIN="$WORK/just-server"
HTTP_PORT=${HTTP_PORT:-18045}
RPC1=19051 RPC2=19052 RPC3=19053
PIDS=()

cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/just-server

for i in 1 2 3; do
    port_var="RPC$i"
    "$BIN" -role=region -dir "$WORK/region$i" -rpc-addr "127.0.0.1:${!port_var}" \
        -node-id "$i" >"$WORK/region$i.log" 2>&1 &
    PIDS+=($!)
    disown $!
done

"$BIN" -role=router -dir "$WORK/router" -addr "127.0.0.1:$HTTP_PORT" \
    -peers "127.0.0.1:$RPC1,127.0.0.1:$RPC2,127.0.0.1:$RPC3" \
    -replication 1 -breaker-failures 2 -probe-interval 500ms \
    >"$WORK/router.log" 2>&1 &
PIDS+=($!)
disown $!

BASE="http://127.0.0.1:$HTTP_PORT"
for _ in $(seq 1 50); do
    if curl -fsS "$BASE/api/v1/health" >/dev/null 2>&1; then break; fi
    sleep 0.2
done
curl -fsS "$BASE/api/v1/health" >/dev/null || {
    echo "FAIL: router never became healthy"
    cat "$WORK/router.log"
    exit 1
}

sql() {
    curl -fsS -X POST "$BASE/api/v1/sql" -H 'Content-Type: application/json' \
        -d "{\"user\":\"smoke\",\"sql\":\"$1\"}"
}

sql "CREATE TABLE p (fid integer:primary key, name string, geom point)" | grep -q created

ROWS=40
for i in $(seq 1 $ROWS); do
    sql "INSERT INTO p VALUES ($i, 'poi-$i', st_makePoint(116.$((i % 10)), 39.$((i % 10))))" >/dev/null
done

TOTAL=$(sql "SELECT fid FROM p" | sed 's/.*"total"://; s/[,}].*//')
[ "$TOTAL" = "$ROWS" ] || { echo "FAIL: scan over TCP saw $TOTAL rows, want $ROWS"; exit 1; }

# Kill region server 1 (the bootstrap primary) mid-workload. Every write
# above was acknowledged only after the synchronous ship to its replica,
# so the router must fail over and still serve all of them.
kill -9 "${PIDS[0]}"

for i in $(seq $((ROWS + 1)) $((ROWS + 10))); do
    sql "INSERT INTO p VALUES ($i, 'poi-$i', st_makePoint(116.5, 39.5))" >/dev/null
done

TOTAL=$(sql "SELECT fid FROM p" | sed 's/.*"total"://; s/[,}].*//')
[ "$TOTAL" = "$((ROWS + 10))" ] || {
    echo "FAIL: after killing a region server, scan saw $TOTAL rows, want $((ROWS + 10))"
    exit 1
}

curl -fsS "$BASE/api/v1/admin/topology" | grep -q '"mode":"router"' ||
    { echo "FAIL: topology endpoint"; exit 1; }

# The router role's maintenance scheduler must be up and healthy even
# with a peer down — quarantine/pressure would flip healthy to false.
curl -fsS "$BASE/api/v1/admin/jobs" | grep -q '"healthy":true' ||
    { echo "FAIL: router admin/jobs not healthy"; curl -fsS "$BASE/api/v1/admin/jobs" || true; exit 1; }

# The killed peer's circuit breaker must open before any revival: the
# failed routes and the background prober both record transport failures
# against 127.0.0.1:$RPC1, and the topology endpoint exposes the state.
BREAKER_OPEN=0
for _ in $(seq 1 50); do
    if curl -fsS "$BASE/api/v1/admin/topology" |
        grep -q "\"addr\":\"127.0.0.1:$RPC1\",\"breaker\":\"open\""; then
        BREAKER_OPEN=1
        break
    fi
    sleep 0.2
done
[ "$BREAKER_OPEN" = 1 ] || {
    echo "FAIL: killed peer 127.0.0.1:$RPC1 never showed breaker:open on topology"
    curl -fsS "$BASE/api/v1/admin/topology" || true
    exit 1
}

# Revive the killed region server: the prober's half-open trial must
# readmit it and flip the breaker back to closed.
"$BIN" -role=region -dir "$WORK/region1" -rpc-addr "127.0.0.1:$RPC1" \
    -node-id 1 >>"$WORK/region1.log" 2>&1 &
PIDS+=($!)
disown $!
BREAKER_CLOSED=0
for _ in $(seq 1 75); do
    if curl -fsS "$BASE/api/v1/admin/topology" |
        grep -q "\"addr\":\"127.0.0.1:$RPC1\",\"breaker\":\"closed\""; then
        BREAKER_CLOSED=1
        break
    fi
    sleep 0.2
done
[ "$BREAKER_CLOSED" = 1 ] || {
    echo "FAIL: revived peer 127.0.0.1:$RPC1 breaker never closed"
    curl -fsS "$BASE/api/v1/admin/topology" || true
    exit 1
}

TOTAL=$(sql "SELECT fid FROM p" | sed 's/.*"total"://; s/[,}].*//')
[ "$TOTAL" = "$((ROWS + 10))" ] || {
    echo "FAIL: after reviving the region server, scan saw $TOTAL rows, want $((ROWS + 10))"
    exit 1
}

# Standalone role: same maintenance-scheduler surface — healthy
# snapshot with the always-registered scrub job, and an on-demand run
# of it succeeds through the admin API.
SA_PORT=$((HTTP_PORT + 1))
"$BIN" -dir "$WORK/standalone" -addr "127.0.0.1:$SA_PORT" -servers 1 \
    >"$WORK/standalone.log" 2>&1 &
PIDS+=($!)
disown $!
SA="http://127.0.0.1:$SA_PORT"
for _ in $(seq 1 50); do
    if curl -fsS "$SA/api/v1/health" >/dev/null 2>&1; then break; fi
    sleep 0.2
done
SA_JOBS=$(curl -fsS "$SA/api/v1/admin/jobs")
echo "$SA_JOBS" | grep -q '"healthy":true' ||
    { echo "FAIL: standalone admin/jobs not healthy: $SA_JOBS"; exit 1; }
SCRUB_JOB=$(echo "$SA_JOBS" | grep -o '"name":"scrub:[^"]*"' | head -1 | sed 's/"name":"//; s/"$//')
[ -n "$SCRUB_JOB" ] || { echo "FAIL: standalone has no registered scrub job: $SA_JOBS"; exit 1; }
curl -fsS -X POST "$SA/api/v1/admin/jobs/run" -H 'Content-Type: application/json' \
    -d "{\"name\":\"$SCRUB_JOB\"}" | grep -q '"ok":true' ||
    { echo "FAIL: on-demand scrub run via admin/jobs"; exit 1; }

echo "PASS: 3-process cluster served $((ROWS + 10)) acknowledged writes across a region-server kill; breaker opened and re-closed; admin/jobs healthy on router and standalone"
